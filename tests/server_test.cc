#include "src/server/graph_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/algos/programs.h"
#include "src/algos/reference.h"
#include "src/server/query.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

GraphServer::Options ServerOpts(int workers, uint64_t cache_budget) {
  GraphServer::Options o;
  o.cache_budget_bytes = cache_budget;
  o.num_workers = workers;
  o.io_threads = 2;
  o.prefetch_depth = 2;
  return o;
}

// The full mixed workload of one serving session: point BFS/SSSP/k-hop
// from several roots plus PageRank and WCC batch jobs.
struct MixedOutcomes {
  std::vector<Outcome<PointResult>> points;
  Outcome<BatchResult<double>> pagerank;
  Outcome<BatchResult<uint32_t>> wcc;
};

MixedOutcomes RunMixedWorkload(GraphServer& server) {
  const std::vector<VertexId> roots = {0, 42, 99, 150, 199};
  std::vector<QueryFuture<PointResult>> point_futures;
  for (VertexId root : roots) {
    PointQuery bfs;
    bfs.kind = QueryKind::kBfs;
    bfs.root = root;
    point_futures.push_back(server.Submit(bfs));
    PointQuery sssp;
    sssp.kind = QueryKind::kSssp;
    sssp.root = root;
    point_futures.push_back(server.Submit(sssp));
    PointQuery khop;
    khop.kind = QueryKind::kKHop;
    khop.root = root;
    khop.limits.max_hops = 2;
    point_futures.push_back(server.Submit(khop));
  }
  PageRankProgram pr;
  pr.num_vertices = server.store().num_vertices();
  BatchQuery pr_spec;
  pr_spec.max_iterations = 20;
  auto pr_future = server.SubmitBatch(pr, pr_spec);
  BatchQuery wcc_spec;
  wcc_spec.direction = EdgeDirection::kBoth;
  auto wcc_future = server.SubmitBatch(WccProgram{}, wcc_spec);

  MixedOutcomes out;
  for (auto& f : point_futures) out.points.push_back(f.Wait());
  out.pagerank = pr_future.Wait();
  out.wcc = wcc_future.Wait();
  return out;
}

// The tentpole guarantee: N concurrent mixed queries against one shared
// cache produce results BIT-IDENTICAL to the same queries run strictly
// serially — across cache-budget regimes mirroring SPU (everything
// resident), MPU (partial residency, eviction pressure), and DPU (nothing
// resident, pure streaming).
TEST(ServerTest, MixedWorkloadSerialVsConcurrentBitIdentical) {
  EdgeList edges = testing::RandomGraph(200, 3000, 71, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 4);
  const auto& m = ms.store->manifest();
  const uint64_t total_decoded =
      m.TotalDecodedSubShardBytes(false) + m.TotalDecodedSubShardBytes(true);
  const uint64_t budgets[] = {UINT64_MAX, total_decoded / 4, 0};

  for (const uint64_t budget : budgets) {
    SCOPED_TRACE("cache budget " + std::to_string(budget));
    MixedOutcomes concurrent, serial;
    {
      auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(6, budget));
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      concurrent = RunMixedWorkload(**server);
    }
    {
      auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(1, budget));
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      serial = RunMixedWorkload(**server);
    }

    ASSERT_EQ(concurrent.points.size(), serial.points.size());
    for (size_t q = 0; q < concurrent.points.size(); ++q) {
      SCOPED_TRACE("point query " + std::to_string(q));
      const auto& c = concurrent.points[q];
      const auto& s = serial.points[q];
      ASSERT_TRUE(c.status.ok()) << c.status.ToString();
      ASSERT_TRUE(s.status.ok()) << s.status.ToString();
      EXPECT_EQ(c.result.vertices, s.result.vertices);
      EXPECT_EQ(c.result.hops, s.result.hops);
      EXPECT_EQ(c.result.costs, s.result.costs);
    }
    ASSERT_TRUE(concurrent.pagerank.status.ok());
    ASSERT_TRUE(serial.pagerank.status.ok());
    EXPECT_EQ(concurrent.pagerank.result.values, serial.pagerank.result.values);
    ASSERT_TRUE(concurrent.wcc.status.ok());
    ASSERT_TRUE(serial.wcc.status.ok());
    EXPECT_EQ(concurrent.wcc.result.values, serial.wcc.result.values);
  }
}

// Concurrent results are not just self-consistent but correct: validate
// the whole mix against the single-threaded reference algorithms.
TEST(ServerTest, ConcurrentResultsMatchReferences) {
  EdgeList edges = testing::RandomGraph(200, 3000, 72, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto& m = ms.store->manifest();
  const uint64_t budget = (m.TotalDecodedSubShardBytes(false) +
                           m.TotalDecodedSubShardBytes(true)) /
                          4;
  auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(6, budget));
  ASSERT_TRUE(server.ok());
  MixedOutcomes out = RunMixedWorkload(**server);

  const std::vector<VertexId> roots = {0, 42, 99, 150, 199};
  for (size_t r = 0; r < roots.size(); ++r) {
    const auto bfs_ref = ReferenceBfs(*ref_graph, roots[r]);
    const auto sssp_ref = ReferenceSssp(*ref_graph, roots[r]);
    const auto& bfs = out.points[3 * r].result;
    const auto& sssp = out.points[3 * r + 1].result;
    const auto& khop = out.points[3 * r + 2].result;

    size_t reachable = 0;
    for (uint32_t d : bfs_ref) reachable += d != UINT32_MAX;
    ASSERT_EQ(bfs.vertices.size(), reachable);
    for (size_t k = 0; k < bfs.vertices.size(); ++k) {
      EXPECT_EQ(bfs.hops[k], bfs_ref[bfs.vertices[k]]);
    }
    ASSERT_EQ(sssp.vertices.size(), sssp.costs.size());
    for (size_t k = 0; k < sssp.vertices.size(); ++k) {
      EXPECT_NEAR(sssp.costs[k], sssp_ref[sssp.vertices[k]], 1e-4);
    }
    // The k-hop neighborhood is exactly the vertices within 2 hops.
    size_t within = 0;
    for (uint32_t d : bfs_ref) within += d != UINT32_MAX && d <= 2;
    ASSERT_EQ(khop.vertices.size(), within);
    for (size_t k = 0; k < khop.vertices.size(); ++k) {
      EXPECT_LE(khop.hops[k], 2u);
      EXPECT_EQ(khop.hops[k], bfs_ref[khop.vertices[k]]);
    }
  }

  const auto pr_ref = ReferencePageRank(*ref_graph, 0.85, 20);
  ASSERT_EQ(out.pagerank.result.values.size(), pr_ref.size());
  for (size_t v = 0; v < pr_ref.size(); ++v) {
    EXPECT_NEAR(out.pagerank.result.values[v], pr_ref[v], 1e-9);
  }
  const auto wcc_ref = ReferenceWcc(*ref_graph);
  EXPECT_EQ(out.wcc.result.values, wcc_ref);
}

TEST(ServerTest, AdmissionRejectsWhenQueueFull) {
  EdgeList edges = testing::RandomGraph(100, 1000, 73);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = ServerOpts(1, UINT64_MAX);
  opts.max_queue = 2;
  opts.start_paused = true;  // nothing dequeues until we say so
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  auto f1 = (*server)->Submit(q);
  auto f2 = (*server)->Submit(q);
  auto f3 = (*server)->Submit(q);  // queue holds 2: rejected immediately
  ASSERT_TRUE(f3.Done());
  EXPECT_TRUE(f3.Wait().status.IsResourceExhausted());

  (*server)->SetPaused(false);
  EXPECT_TRUE(f1.Wait().status.ok());
  EXPECT_TRUE(f2.Wait().status.ok());
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServerTest, QueueDeadlineShedsStaleQueries) {
  EdgeList edges = testing::RandomGraph(100, 1000, 74);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = ServerOpts(1, UINT64_MAX);
  opts.start_paused = true;
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  q.limits.deadline = std::chrono::milliseconds(5);
  auto f = (*server)->Submit(q);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  (*server)->SetPaused(false);
  EXPECT_TRUE(f.Wait().status.IsDeadlineExceeded());
  EXPECT_EQ((*server)->stats().shed, 1u);
}

TEST(ServerTest, BudgetCappedQueryReturnsPartialResult) {
  EdgeList edges = testing::RandomGraph(200, 3000, 75);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(2, UINT64_MAX));
  ASSERT_TRUE(server.ok());

  // A budget that cannot fund a single sub-shard still terminates cleanly:
  // the root (hop 0) is the whole partial result.
  PointQuery starved;
  starved.kind = QueryKind::kBfs;
  starved.root = 0;
  starved.limits.io_byte_budget = 1;
  const auto& starved_out = (*server)->Submit(starved).Wait();
  EXPECT_TRUE(starved_out.status.IsResourceExhausted())
      << starved_out.status.ToString();
  EXPECT_TRUE(starved_out.result.stats.truncated);
  ASSERT_EQ(starved_out.result.vertices, std::vector<VertexId>{0});
  EXPECT_EQ(starved_out.result.hops, std::vector<uint32_t>{0});

  // A budget funding only part of the scan yields a truncated prefix whose
  // hop values are still genuine path lengths (>= the true distance).
  const auto& m = ms.store->manifest();
  PointQuery partial;
  partial.kind = QueryKind::kBfs;
  partial.root = 0;
  partial.limits.io_byte_budget =
      m.subshard(0, 0).size + m.subshard(0, 1).size;
  const auto& partial_out = (*server)->Submit(partial).Wait();
  EXPECT_TRUE(partial_out.status.IsResourceExhausted());
  EXPECT_TRUE(partial_out.result.stats.truncated);
  ASSERT_FALSE(partial_out.result.vertices.empty());
  const auto bfs_ref = ReferenceBfs(*ref_graph, 0);
  for (size_t k = 0; k < partial_out.result.vertices.size(); ++k) {
    EXPECT_GE(partial_out.result.hops[k],
              bfs_ref[partial_out.result.vertices[k]]);
  }
  EXPECT_EQ((*server)->stats().truncated, 2u);
}

TEST(ServerTest, ShutdownAbortsQueuedQueries) {
  EdgeList edges = testing::RandomGraph(100, 1000, 76);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = ServerOpts(1, UINT64_MAX);
  opts.start_paused = true;
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());
  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  auto f = (*server)->Submit(q);
  server->reset();  // destroy with the query still queued
  EXPECT_TRUE(f.Wait().status.IsAborted());
}

TEST(ServerTest, InvalidRootFailsCleanly) {
  EdgeList edges = testing::RandomGraph(50, 400, 77);
  auto ms = testing::BuildMemStore(edges, 2);
  auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(2, UINT64_MAX));
  ASSERT_TRUE(server.ok());
  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 1000;  // out of range
  EXPECT_TRUE((*server)->Submit(q).Wait().status.IsInvalidArgument());
  EXPECT_EQ((*server)->stats().failed, 1u);
}

TEST(ServerTest, StatsTrackServingBehavior) {
  EdgeList edges = testing::RandomGraph(150, 2000, 78);
  auto ms = testing::BuildMemStore(edges, 2);
  auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(4, UINT64_MAX));
  ASSERT_TRUE(server.ok());
  std::vector<QueryFuture<PointResult>> futures;
  for (int n = 0; n < 12; ++n) {
    PointQuery q;
    q.kind = QueryKind::kBfs;
    q.root = static_cast<VertexId>(n * 7 % 150);
    futures.push_back((*server)->Submit(q));
  }
  for (auto& f : futures) EXPECT_TRUE(f.Wait().status.ok());
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.cache.hits + stats.cache.misses, 0u);
  EXPECT_GT(stats.cache_hit_rate, 0.0);  // 12 similar queries must share
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  // hits + misses covers every cache lookup the queries made.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses,
            stats.cache.hits + stats.cache.misses);
}

// Force-scalar and force-simd servers produce bit-identical results for the
// whole mixed workload, and both server- and query-level stats report the
// decode path and its counters.
TEST(ServerTest, DecodePathsBitIdenticalAndCountersReported) {
  EdgeList edges = testing::RandomGraph(200, 3000, 81, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 4);

  auto run_with = [&](SimdDecode mode) {
    GraphServer::Options o = ServerOpts(4, UINT64_MAX);
    o.simd_decode = mode;
    auto server = GraphServer::Open(ms.env.get(), "g", o);
    NX_CHECK(server.ok()) << server.status().ToString();
    MixedOutcomes out = RunMixedWorkload(**server);
    return std::make_pair(std::move(out), (*server)->stats());
  };
  auto [scalar, scalar_stats] = run_with(SimdDecode::kForceScalar);
  auto [simd, simd_stats] = run_with(SimdDecode::kForceSimd);

  ASSERT_EQ(scalar.points.size(), simd.points.size());
  for (size_t q = 0; q < scalar.points.size(); ++q) {
    SCOPED_TRACE("point query " + std::to_string(q));
    ASSERT_TRUE(scalar.points[q].status.ok());
    ASSERT_TRUE(simd.points[q].status.ok());
    EXPECT_EQ(scalar.points[q].result.vertices, simd.points[q].result.vertices);
    EXPECT_EQ(scalar.points[q].result.hops, simd.points[q].result.hops);
    EXPECT_EQ(scalar.points[q].result.costs, simd.points[q].result.costs);
  }
  ASSERT_TRUE(scalar.pagerank.status.ok());
  ASSERT_TRUE(simd.pagerank.status.ok());
  EXPECT_EQ(scalar.pagerank.result.values, simd.pagerank.result.values);
  ASSERT_TRUE(scalar.wcc.status.ok());
  ASSERT_TRUE(simd.wcc.status.ok());
  EXPECT_EQ(scalar.wcc.result.values, simd.wcc.result.values);

  EXPECT_EQ(scalar_stats.decode_path, "scalar");
  EXPECT_EQ(simd_stats.decode_path,
            DecodePathName(ResolveDecodePath(SimdDecode::kForceSimd)));
  // The default store format is NXS2 (possibly overridden by the CI format
  // matrix): bulk decodes only happen on NXS2 stores.
  if (DefaultSubShardFormat() == SubShardFormat::kNxs2) {
    EXPECT_GT(scalar_stats.bulk_decode_calls, 0u);
    EXPECT_GT(simd_stats.bulk_decode_calls, 0u);
    EXPECT_GT(simd_stats.decode_seconds, 0.0);
  }

  // Per-query attribution: every query reports its decode path; the sum of
  // per-query bulk decodes equals the server total (each cache-miss decode
  // is charged to exactly one query).
  uint64_t per_query_total = 0;
  for (const auto& p : scalar.points) {
    EXPECT_EQ(p.result.stats.decode_path, "scalar");
    per_query_total += p.result.stats.bulk_decode_calls;
  }
  per_query_total += scalar.pagerank.result.stats.bulk_decode_calls;
  per_query_total += scalar.wcc.result.stats.bulk_decode_calls;
  EXPECT_EQ(per_query_total, scalar_stats.bulk_decode_calls);
}

}  // namespace
}  // namespace nxgraph
