// Property sweep over the preprocessing pipeline: for random graphs of
// varying shape and every interval count, the DSSS invariants must hold
// and the reassembled edge multiset must equal the input.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/algos/reference.h"
#include "src/prep/degreer.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

struct PrepConfig {
  uint64_t vertices;
  uint64_t edges;
  uint32_t p;
  uint64_t stride;  // index sparsity
  bool weighted;
};

class PrepPropertyTest : public ::testing::TestWithParam<PrepConfig> {};

TEST_P(PrepPropertyTest, EdgeMultisetPreserved) {
  const PrepConfig& c = GetParam();
  EdgeList edges =
      testing::RandomGraph(c.vertices, c.edges, 7 * c.p + c.vertices,
                           c.weighted, c.stride);
  auto ms = testing::BuildMemStore(edges, c.p);
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref->edges.size(), edges.num_edges());

  // Translate the input through the mapping and compare as multisets.
  auto mapping = LoadMapping(ms.env.get(), "g");
  ASSERT_TRUE(mapping.ok());
  std::multiset<std::pair<VertexId, VertexId>> expected, actual;
  for (size_t e = 0; e < edges.num_edges(); ++e) {
    expected.insert({IndexToId(*mapping, edges.src(e)),
                     IndexToId(*mapping, edges.dst(e))});
  }
  for (const Edge& e : ref->edges) actual.insert({e.src, e.dst});
  EXPECT_EQ(expected, actual);
}

TEST_P(PrepPropertyTest, IntervalsPartitionVertexSpace) {
  const PrepConfig& c = GetParam();
  EdgeList edges = testing::RandomGraph(c.vertices, c.edges, c.p, c.weighted,
                                        c.stride);
  auto ms = testing::BuildMemStore(edges, c.p);
  const Manifest& m = ms.store->manifest();
  EXPECT_EQ(m.interval_offsets.front(), 0u);
  EXPECT_EQ(m.interval_offsets.back(), m.num_vertices);
  EXPECT_TRUE(std::is_sorted(m.interval_offsets.begin(),
                             m.interval_offsets.end()));
  // Every vertex belongs to exactly the interval IntervalOf reports.
  for (VertexId v = 0; v < m.num_vertices;
       v += std::max<VertexId>(1, m.num_vertices / 97)) {
    const uint32_t i = m.IntervalOf(v);
    EXPECT_GE(v, m.interval_begin(i));
    EXPECT_LT(v, m.interval_end(i));
  }
}

TEST_P(PrepPropertyTest, DegreesConserved) {
  const PrepConfig& c = GetParam();
  EdgeList edges = testing::RandomGraph(c.vertices, c.edges, 13 * c.p,
                                        c.weighted, c.stride);
  auto ms = testing::BuildMemStore(edges, c.p);
  auto out_d = ms.store->LoadOutDegrees();
  auto in_d = ms.store->LoadInDegrees();
  ASSERT_TRUE(out_d.ok());
  ASSERT_TRUE(in_d.ok());
  uint64_t out_sum = 0, in_sum = 0;
  for (uint32_t d : *out_d) out_sum += d;
  for (uint32_t d : *in_d) in_sum += d;
  EXPECT_EQ(out_sum, edges.num_edges());
  EXPECT_EQ(in_sum, edges.num_edges());
}

TEST_P(PrepPropertyTest, SubShardsSortedAndInBounds) {
  const PrepConfig& c = GetParam();
  EdgeList edges = testing::RandomGraph(c.vertices, c.edges, 17 + c.p,
                                        c.weighted, c.stride);
  auto ms = testing::BuildMemStore(edges, c.p);
  const Manifest& m = ms.store->manifest();
  for (uint32_t i = 0; i < m.num_intervals; ++i) {
    for (uint32_t j = 0; j < m.num_intervals; ++j) {
      auto ss = ms.store->LoadSubShard(i, j);
      ASSERT_TRUE(ss.ok());
      EXPECT_TRUE(std::is_sorted(ss->dsts.begin(), ss->dsts.end()));
      for (uint32_t g = 0; g < ss->num_dsts(); ++g) {
        EXPECT_TRUE(std::is_sorted(ss->srcs.begin() + ss->offsets[g],
                                   ss->srcs.begin() + ss->offsets[g + 1]));
      }
      if (c.weighted) {
        EXPECT_EQ(ss->weights.size(), ss->srcs.size());
      } else {
        EXPECT_TRUE(ss->weights.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrepPropertyTest,
    ::testing::Values(PrepConfig{10, 30, 1, 1, false},      // tiny, P=1
                      PrepConfig{10, 30, 10, 1, false},     // P == n
                      PrepConfig{100, 1000, 3, 1, false},   // P !| n
                      PrepConfig{100, 1000, 16, 1000, false},  // sparse ids
                      PrepConfig{257, 4099, 7, 3, true},    // weighted, odd
                      PrepConfig{64, 64, 8, 1, false},      // m == n
                      PrepConfig{500, 250, 12, 1, false}),  // m < n
    [](const ::testing::TestParamInfo<PrepConfig>& info) {
      const auto& c = info.param;
      return "v" + std::to_string(c.vertices) + "e" +
             std::to_string(c.edges) + "p" + std::to_string(c.p) + "s" +
             std::to_string(c.stride) + (c.weighted ? "w" : "u");
    });

}  // namespace
}  // namespace nxgraph
