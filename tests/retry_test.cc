// Unit tests for the transient-fault primitives: errno classification
// through Status::FromErrno (the single translation funnel for every Env
// backend), the retryability bit, and the RunWithRetry loop (attempt
// budget, deadline, deterministic jittered backoff, counter accounting).
#include "src/util/retry.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/util/status.h"

namespace nxgraph {
namespace {

TEST(StatusClassificationTest, TransientErrnosAreRetryable) {
  for (int err : {EINTR, EAGAIN, EWOULDBLOCK, EBUSY, ETIMEDOUT, ENOBUFS}) {
    Status s = Status::FromErrno("read", err);
    EXPECT_TRUE(s.IsIOError()) << err;
    EXPECT_TRUE(s.retryable()) << err;
    EXPECT_EQ(s.sys_errno(), err);
    EXPECT_TRUE(Status::TransientErrno(err)) << err;
  }
}

TEST(StatusClassificationTest, PermanentErrnosAreNotRetryable) {
  // EIO is media/ring death (degrade, don't retry) and ENOSPC does not
  // heal on a tight retry loop — both stay permanent by design.
  for (int err : {EIO, ENOSPC, EACCES, EBADF, EINVAL}) {
    Status s = Status::FromErrno("write", err);
    EXPECT_FALSE(s.retryable()) << err;
    EXPECT_EQ(s.sys_errno(), err);
    EXPECT_FALSE(Status::TransientErrno(err)) << err;
  }
}

TEST(StatusClassificationTest, EnoentIsPermanentIOError) {
  // FromErrno only classifies retryability; the open-path ENOENT -> NotFound
  // mapping lives in PosixOpenError, which knows it was an open.
  Status s = Status::FromErrno("open", ENOENT);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_FALSE(s.retryable());
  EXPECT_EQ(s.sys_errno(), ENOENT);
}

TEST(StatusClassificationTest, MakeRetryablePreservesCodeAndErrno) {
  Status corruption = Status::Corruption("segment truncated");
  Status retryable = Status::MakeRetryable(corruption);
  EXPECT_TRUE(retryable.IsCorruption());
  EXPECT_TRUE(retryable.retryable());
  // Idempotent, and a no-op on OK.
  EXPECT_TRUE(Status::MakeRetryable(retryable).retryable());
  EXPECT_TRUE(Status::MakeRetryable(Status::OK()).ok());

  Status io = Status::MakeRetryable(Status::FromErrno("write", ENOSPC));
  EXPECT_EQ(io.sys_errno(), ENOSPC);
  EXPECT_TRUE(io.retryable());

  EXPECT_TRUE(Status::TransientIOError("hiccup").retryable());
  EXPECT_TRUE(Status::TransientIOError("hiccup").IsIOError());
}

// Zero-wait policy for loop-semantics tests: no backoff sleeps, so the
// attempt accounting is exact and the tests are instant.
RetryPolicy InstantPolicy(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.backoff_initial_micros = 0;
  policy.backoff_max_micros = 0;
  return policy;
}

TEST(RunWithRetryTest, SucceedsAfterTransientFailures) {
  RetryCounters counters;
  int calls = 0;
  Status s = RunWithRetry(InstantPolicy(4), &counters, [&] {
    return ++calls < 3 ? Status::TransientIOError("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.io_retries.load(), 2u);
}

TEST(RunWithRetryTest, NonRetryableFailsImmediately) {
  RetryCounters counters;
  int calls = 0;
  Status s = RunWithRetry(InstantPolicy(4), &counters, [&] {
    ++calls;
    return Status::FromErrno("write", EIO);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.sys_errno(), EIO);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(counters.io_retries.load(), 0u);
}

TEST(RunWithRetryTest, ExhaustsAttemptsAndReturnsLastStatus) {
  RetryCounters counters;
  int calls = 0;
  Status s = RunWithRetry(InstantPolicy(4), &counters, [&] {
    ++calls;
    return Status::TransientIOError("attempt " + std::to_string(calls));
  });
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.retryable());
  EXPECT_EQ(s.message(), "attempt 4");
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(counters.io_retries.load(), 3u);
}

TEST(RunWithRetryTest, MaxAttemptsOneDisablesRetrying) {
  int calls = 0;
  Status s = RunWithRetry(InstantPolicy(1), nullptr, [&] {
    ++calls;
    return Status::TransientIOError("flaky");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
  // 0 is treated as 1, not as unlimited.
  calls = 0;
  (void)RunWithRetry(InstantPolicy(0), nullptr, [&] {
    ++calls;
    return Status::TransientIOError("flaky");
  });
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetryTest, DeadlineCutsOffRemainingAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff_initial_micros = 2000;
  policy.backoff_multiplier = 1.0;
  policy.backoff_max_micros = 2000;
  policy.op_deadline_seconds = 0.005;  // room for ~2-5 waits, never 99
  RetryCounters counters;
  int calls = 0;
  Status s = RunWithRetry(policy, &counters, [&] {
    ++calls;
    return Status::TransientIOError("persistent");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_LT(calls, 100);
  EXPECT_GT(counters.retry_wait_micros.load(), 0u);
  EXPECT_LE(counters.retry_wait_micros.load(), 5000u);
}

TEST(BackoffTest, DeterministicJitterWithinBounds) {
  RetryPolicy policy;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    for (uint64_t salt : {0ull, 1ull, 42ull}) {
      const uint64_t a = policy.BackoffMicros(attempt, salt);
      const uint64_t b = policy.BackoffMicros(attempt, salt);
      EXPECT_EQ(a, b) << "jitter must be deterministic";
      // Nominal backoff capped at max; jitter scales it into [0.5, 1.0).
      double nominal = static_cast<double>(policy.backoff_initial_micros);
      for (int i = 1; i < attempt; ++i) nominal *= policy.backoff_multiplier;
      if (nominal > policy.backoff_max_micros) {
        nominal = static_cast<double>(policy.backoff_max_micros);
      }
      EXPECT_GE(a, static_cast<uint64_t>(nominal * 0.5) - 1) << attempt;
      EXPECT_LT(a, static_cast<uint64_t>(nominal) + 1) << attempt;
    }
  }
  // Different salts decorrelate consecutive retries.
  EXPECT_NE(policy.BackoffMicros(3, 7), policy.BackoffMicros(3, 8));
}

TEST(BackoffTest, GrowthIsCappedAtMax) {
  RetryPolicy policy;  // 100us * 8^k capped at 50ms
  EXPECT_LE(policy.BackoffMicros(10, 0), policy.backoff_max_micros);
  EXPECT_GE(policy.BackoffMicros(10, 0), policy.backoff_max_micros / 2);
}

}  // namespace
}  // namespace nxgraph
