// Baseline engines must compute the same fixpoints as the references —
// they differ in storage layout and parallel discipline, not semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algos/programs.h"
#include "src/algos/reference.h"
#include "src/baselines/graphchi_like.h"
#include "src/baselines/turbograph_like.h"
#include "src/baselines/xstream_like.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

template <typename EngineT>
void ExpectPageRankMatches(EngineT& engine,
                           const std::vector<double>& expected) {
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(engine.values().size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(engine.values()[v], expected[v], 1e-9) << "vertex " << v;
  }
}

class BaselinePageRankTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselinePageRankTest, GraphChiLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(300, 3000, 61);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.num_threads = GetParam();
  opt.max_iterations = 5;
  GraphChiLikeEngine<PageRankProgram> engine(ms.store, program, opt);
  ExpectPageRankMatches(engine, expected);
}

TEST_P(BaselinePageRankTest, TurboGraphLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(300, 3000, 62);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.num_threads = GetParam();
  opt.max_iterations = 5;
  TurboGraphLikeEngine<PageRankProgram> engine(ms.store, program, opt);
  ExpectPageRankMatches(engine, expected);
}

TEST_P(BaselinePageRankTest, XStreamLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(300, 3000, 63);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.num_threads = GetParam();
  opt.max_iterations = 5;
  XStreamLikeEngine<PageRankProgram> engine(ms.store, program, opt);
  ExpectPageRankMatches(engine, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, BaselinePageRankTest,
                         ::testing::Values(0, 2, 4));

TEST(BaselineBfsTest, GraphChiLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(200, 1200, 64);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.num_threads = 2;
  GraphChiLikeEngine<BfsProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.values(), ReferenceBfs(*ref_graph, 0));
}

TEST(BaselineBfsTest, TurboGraphLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(200, 1200, 65);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.num_threads = 2;
  TurboGraphLikeEngine<BfsProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.values(), ReferenceBfs(*ref_graph, 0));
}

TEST(BaselineBfsTest, XStreamLikeMatchesReference) {
  EdgeList edges = testing::RandomGraph(200, 1200, 66);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.num_threads = 2;
  XStreamLikeEngine<BfsProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.values(), ReferenceBfs(*ref_graph, 0));
}

TEST(BaselineWccTest, GraphChiLikeBothDirections) {
  EdgeList edges = testing::RandomGraph(150, 220, 67);
  auto ms = testing::BuildMemStore(edges, 3);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  WccProgram program;
  RunOptions opt;
  opt.num_threads = 2;
  opt.direction = EdgeDirection::kBoth;
  GraphChiLikeEngine<WccProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.values(), ReferenceWcc(*ref_graph));
}

TEST(BaselineIoTest, GraphChiLikeChargesStreamingWhenBudgetSmall) {
  EdgeList edges = testing::RandomGraph(200, 4000, 68);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.max_iterations = 3;
  opt.memory_budget_bytes = 2 * ms.store->num_vertices() * sizeof(double) + 1;
  GraphChiLikeEngine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->bytes_read, 0u);  // shards re-streamed every iteration

  RunOptions unlimited = opt;
  unlimited.memory_budget_bytes = 0;
  GraphChiLikeEngine<PageRankProgram> cached(ms.store, program, unlimited);
  auto cached_stats = cached.Run();
  ASSERT_TRUE(cached_stats.ok());
  EXPECT_EQ(cached_stats->bytes_read, 0u);  // everything cached
}

TEST(BaselineIoTest, TurboGraphPaysIntervalPagingCosts) {
  EdgeList edges = testing::RandomGraph(400, 4000, 69);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions small;
  small.max_iterations = 2;
  small.memory_budget_bytes = 1;  // no page cache at all
  TurboGraphLikeEngine<PageRankProgram> engine(ms.store, program, small);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());

  RunOptions big;
  big.max_iterations = 2;
  big.memory_budget_bytes = 0;  // unlimited page cache
  TurboGraphLikeEngine<PageRankProgram> cached(ms.store, program, big);
  auto cached_stats = cached.Run();
  ASSERT_TRUE(cached_stats.ok());
  // Small budgets re-read source intervals once per interval pair.
  EXPECT_GT(stats->bytes_read, cached_stats->bytes_read);
}

TEST(BaselineIoTest, XStreamWritesUpdateTraffic) {
  EdgeList edges = testing::RandomGraph(100, 2000, 70);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.max_iterations = 2;
  XStreamLikeEngine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  // Update records: one per edge per iteration, 12+ bytes each.
  EXPECT_GE(stats->bytes_written, 2u * 2000u * 12u);
}

}  // namespace
}  // namespace nxgraph
