// FaultInjectionEnv semantics plus the crash matrix: a checkpointed run
// killed at every injected crash point must, after recovery, resume (or
// restart) to final values bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/checkpoint.h"
#include "src/engine/engine.h"
#include "src/io/fault_env.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

std::string ReadAll(Env* env, const std::string& path) {
  std::string data;
  NX_CHECK_OK(ReadFileToString(env, path, &data));
  return data;
}

// ---- durability-model unit tests ------------------------------------------

TEST(FaultEnvTest, UnsyncedAppendsAreLostOnCrash) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault.NewWritableFile("f", &f).ok());
  ASSERT_TRUE(f->Append(std::string("hello")).ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(ReadAll(&fault, "f"), "hello");  // visible pre-crash
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  // Creation is journaled metadata, content was never synced: the file
  // survives empty — exactly the "renamed an unsynced temp" hazard.
  EXPECT_TRUE(fault.FileExists("f"));
  EXPECT_EQ(ReadAll(&fault, "f"), "");
}

TEST(FaultEnvTest, SyncDrawsTheDurabilityLine) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault.NewWritableFile("f", &f).ok());
  ASSERT_TRUE(f->Append(std::string("durable")).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(std::string(" volatile")).ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(ReadAll(&fault, "f"), "durable volatile");
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "f"), "durable");
}

TEST(FaultEnvTest, RandomWriteFlushIsTheDurabilityBarrier) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  std::unique_ptr<RandomWriteFile> f;
  ASSERT_TRUE(fault.NewRandomWriteFile("rw", &f).ok());
  ASSERT_TRUE(f->WriteAt(0, "AAAA", 4).ok());
  ASSERT_TRUE(f->Flush().ok());
  ASSERT_TRUE(f->WriteAt(0, "BBBB", 4).ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(ReadAll(&fault, "rw"), "BBBB");
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "rw"), "AAAA");
}

TEST(FaultEnvTest, PreexistingFilesAreAlreadyDurable) {
  auto mem = NewMemEnv();
  ASSERT_TRUE(WriteStringToFile(mem.get(), "old", "ancient data").ok());
  FaultInjectionEnv fault(mem.get());
  // Opening for positional writes treats the existing content as synced
  // long ago; only the new writes are at risk.
  std::unique_ptr<RandomWriteFile> f;
  ASSERT_TRUE(fault.NewRandomWriteFile("old", &f).ok());
  ASSERT_TRUE(f->WriteAt(0, "X", 1).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "old"), "ancient data");
}

TEST(FaultEnvTest, DurableWriteSurvivesCrashAtomically) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  ASSERT_TRUE(WriteStringToFileDurable(&fault, "cfg", "v1").ok());
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "cfg"), "v1");
  // The non-durable variant loses the content (empty surviving file): the
  // contract WriteStringToFileDurable exists to fix.
  ASSERT_TRUE(WriteStringToFile(&fault, "cfg2", "v1").ok());
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "cfg2"), "");
}

TEST(FaultEnvTest, KillSwitchTearsTheFatalWriteAndStaysDead) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  std::unique_ptr<RandomWriteFile> f;
  ASSERT_TRUE(fault.NewRandomWriteFile("t", &f).ok());
  ASSERT_TRUE(f->WriteAt(0, "12345678", 8).ok());
  ASSERT_TRUE(f->Flush().ok());

  fault.SetKillSwitch(0);  // the very next mutating op dies
  Status s = f->WriteAt(0, "ABCDEFGH", 8);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(fault.dead());
  EXPECT_EQ(fault.killed_op(), "WriteAt(t)");
  // Half the write reached the page cache: torn, visible pre-crash.
  EXPECT_EQ(ReadAll(&fault, "t"), "ABCD5678");
  // Everything later fails too.
  EXPECT_TRUE(f->WriteAt(0, "x", 1).IsIOError());
  EXPECT_TRUE(fault.RenameFile("t", "u").IsIOError());

  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_FALSE(fault.dead());
  EXPECT_EQ(ReadAll(&fault, "t"), "12345678");  // torn prefix rolled back
  EXPECT_TRUE(f->WriteAt(0, "ok", 2).ok());     // env revived
}

TEST(FaultEnvTest, RenameIsAtomicUnderTheKillSwitch) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  ASSERT_TRUE(WriteStringToFileDurable(&fault, "dst", "old").ok());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault.NewWritableFile("tmp", &f).ok());
  ASSERT_TRUE(f->Append(std::string("new")).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  fault.SetKillSwitch(0);
  EXPECT_TRUE(fault.RenameFile("tmp", "dst").IsIOError());
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  // The rename never happened: the old destination is intact, whole.
  EXPECT_EQ(ReadAll(&fault, "dst"), "old");

  // Re-run the commit without a kill: the new content replaces it whole.
  ASSERT_TRUE(fault.RenameFile("tmp", "dst").ok());
  ASSERT_TRUE(fault.CrashAndRecover().ok());
  EXPECT_EQ(ReadAll(&fault, "dst"), "new");
}

TEST(FaultEnvTest, MutationCountObservesEveryCrashPoint) {
  auto mem = NewMemEnv();
  FaultInjectionEnv fault(mem.get());
  EXPECT_EQ(fault.mutation_count(), 0u);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault.NewWritableFile("f", &f).ok());   // Create
  ASSERT_TRUE(f->Append(std::string("x")).ok());      // Append
  ASSERT_TRUE(f->Sync().ok());                        // Sync
  ASSERT_TRUE(f->Close().ok());                       // (not counted)
  ASSERT_TRUE(fault.RenameFile("f", "g").ok());       // Rename
  ASSERT_TRUE(fault.RemoveFile("g").ok());            // Remove
  EXPECT_EQ(fault.mutation_count(), 5u);
}

// ---- crash matrix ----------------------------------------------------------

struct CrashTrialResult {
  int resumed_from = 0;
  std::string killed_op;  // empty when the kill never fired
};

/// One crash trial: build a fresh store, run with the kill switch armed at
/// `kill_at`, crash-recover, rerun to completion, and demand bit-identical
/// final values. Returns where the rerun resumed and what op was killed.
template <typename Program>
CrashTrialResult CrashTrial(const EdgeList& edges, uint32_t p,
                            Program program, const RunOptions& opt,
                            const std::vector<typename Program::Value>& expected,
                            uint64_t kill_at) {
  // The store is built directly on the base env: it models data synced
  // long before the crash window under test.
  auto ms = testing::BuildMemStore(edges, p);
  FaultInjectionEnv fault(ms.env.get());
  auto store = OpenGraphStore("g", &fault);
  NX_CHECK(store.ok());

  fault.SetKillSwitch(kill_at);
  CrashTrialResult result;
  {
    Engine<Program> doomed(*store, program, opt);
    auto stats = doomed.Run();
    if (!stats.ok()) {
      EXPECT_TRUE(stats.status().IsIOError()) << stats.status().ToString();
    }
  }
  result.killed_op = fault.killed_op();
  EXPECT_TRUE(fault.CrashAndRecover().ok());

  auto reopened = OpenGraphStore("g", &fault);
  NX_CHECK(reopened.ok());
  Engine<Program> survivor(*reopened, program, opt);
  auto stats = survivor.Run();
  EXPECT_TRUE(stats.ok()) << "kill_at=" << kill_at << " killed="
                          << result.killed_op << ": "
                          << stats.status().ToString();
  if (!stats.ok()) return result;
  result.resumed_from = stats->resumed_from_iteration;
  EXPECT_EQ(survivor.values(), expected)
      << "kill_at=" << kill_at << " killed=" << result.killed_op
      << " resumed_from=" << result.resumed_from;
  return result;
}

/// Classifies a killed-op description into the crash-point classes the
/// matrix must cover.
std::string CrashClass(const std::string& op) {
  if (op.empty()) return "";
  if (op.find("hubs_") != std::string::npos) return "hub-write";
  if (op.find("values.nxi") != std::string::npos) return "interval-writeback";
  if (op.find("values_ckpt.nxi") != std::string::npos) return "snapshot-write";
  if (op.rfind("Rename(", 0) == 0 &&
      op.find(kCheckpointFileName) != std::string::npos) {
    return "checkpoint-rename";
  }
  if (op.find(kCheckpointFileName) != std::string::npos) {
    return "checkpoint-write";
  }
  return "other";
}

template <typename Program>
void RunCrashMatrix(const EdgeList& edges, uint32_t p, Program program,
                    const RunOptions& opt, size_t max_trials,
                    const std::vector<std::string>& required_classes) {
  // Uninterrupted reference (plain MemEnv) for values and for sizing the
  // sweep via the fault env's mutation count.
  std::vector<typename Program::Value> expected;
  {
    auto ms = testing::BuildMemStore(edges, p);
    Engine<Program> reference(ms.store, program, opt);
    auto stats = reference.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    expected = reference.values();
  }
  uint64_t total_mutations = 0;
  {
    auto ms = testing::BuildMemStore(edges, p);
    FaultInjectionEnv fault(ms.env.get());
    auto store = OpenGraphStore("g", &fault);
    ASSERT_TRUE(store.ok());
    Engine<Program> counter(*store, program, opt);
    ASSERT_TRUE(counter.Run().ok());
    EXPECT_EQ(counter.values(), expected);
    total_mutations = fault.mutation_count();
  }
  ASSERT_GT(total_mutations, 0u);

  const uint64_t stride =
      std::max<uint64_t>(1, total_mutations / max_trials);
  std::set<std::string> classes;
  int resumes_past_zero = 0;
  for (uint64_t kill_at = 0; kill_at < total_mutations; kill_at += stride) {
    CrashTrialResult r = CrashTrial(edges, p, program, opt, expected, kill_at);
    if (!r.killed_op.empty()) classes.insert(CrashClass(r.killed_op));
    if (r.resumed_from > 0) ++resumes_past_zero;
  }
  // Crashes mid-run must sometimes leave a usable checkpoint: resume from
  // k > 0 has to be exercised, not just clean iteration-0 restarts.
  EXPECT_GT(resumes_past_zero, 0);
  for (const std::string& required : required_classes) {
    EXPECT_TRUE(classes.count(required))
        << "crash matrix never hit class '" << required << "'";
  }
}

TEST(CrashMatrixTest, DpuPageRankRecoversFromEveryCrashPoint) {
  EdgeList edges = testing::RandomGraph(200, 2400, 77);
  PageRankProgram program;
  program.num_vertices = 200;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 4;
  opt.num_threads = 2;
  opt.checkpoint_interval = 1;
  RunCrashMatrix(edges, 4, program, opt, /*max_trials=*/512,
                 {"hub-write", "interval-writeback", "checkpoint-rename"});
}

TEST(CrashMatrixTest, MpuWccWithSparseCheckpointsRecovers) {
  // MPU + kBoth exercises resident-segment checkpoints and both hub
  // directions; checkpoint_interval 2 adds the side snapshot store to the
  // crash surface.
  EdgeList edges = testing::RandomGraph(220, 1400, 78);
  WccProgram program;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kMixedPhase;
  opt.memory_budget_bytes = 2800;
  opt.direction = EdgeDirection::kBoth;
  opt.num_threads = 2;
  opt.checkpoint_interval = 2;
  RunCrashMatrix(edges, 4, program, opt, /*max_trials=*/512,
                 {"hub-write", "checkpoint-rename"});
}

TEST(CrashMatrixTest, WritebackBudgetZeroAlsoRecovers) {
  // Budget 0 takes the fully synchronous write path, whose durability at
  // checkpoint time comes from the explicit store Sync, not the queue's
  // Drain — the crash matrix must hold there too.
  EdgeList edges = testing::RandomGraph(180, 2000, 79);
  PageRankProgram program;
  program.num_vertices = 180;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 3;
  opt.num_threads = 2;
  opt.writeback_buffer_bytes = 0;
  opt.checkpoint_interval = 1;
  RunCrashMatrix(edges, 4, program, opt, /*max_trials=*/512,
                 {"interval-writeback", "checkpoint-rename"});
}

}  // namespace
}  // namespace nxgraph
