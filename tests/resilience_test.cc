// Transient-fault resilience tests: the engine soak matrix runs
// PageRank/WCC/BFS across SPU/DPU/MPU on a FlakyEnv injecting ~1% transient
// read/write/flush errors and short reads — results must be bit-identical to
// the fault-free run, with the retries visible in RunStats. A zero-rate
// FlakyEnv run must report zero retries (the retry layer is pure bookkeeping
// on a healthy device). The downgrade test kills the io_uring ring mid-run
// and requires the run to complete through the buffered reopen path with
// backend_downgrades == 1 and unchanged results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/engine.h"
#include "src/io/flaky_env.h"
#include "src/io/posix_base.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

// No bit_flip in the soak rates: engine phases verify each sub-shard's
// checksum only on first touch, so a flip injected into an unverified
// re-read would silently corrupt results instead of being healed. Bit
// flips are exercised at the store layer (flaky_env_test.cc), where every
// read verifies.
FlakyFaultRates SoakRates(uint64_t seed) {
  FlakyFaultRates rates;
  rates.read_error = 0.01;
  rates.write_error = 0.01;
  rates.flush_error = 0.01;
  rates.short_read = 0.01;
  rates.seed = seed;
  return rates;
}

struct StrategyCase {
  UpdateStrategy strategy;
  const char* name;
};

constexpr StrategyCase kStrategies[] = {
    {UpdateStrategy::kSinglePhase, "spu"},
    {UpdateStrategy::kDoublePhase, "dpu"},
    {UpdateStrategy::kMixedPhase, "mpu"},
};

RunOptions SoakOptions(UpdateStrategy strategy, uint64_t num_vertices,
                       const std::string& scratch) {
  RunOptions opt;
  opt.strategy = strategy;
  if (strategy == UpdateStrategy::kMixedPhase) {
    // Roughly half the intervals resident: hubs AND interval segments on
    // disk, so every pipeline sees faults.
    opt.memory_budget_bytes =
        num_vertices * sizeof(double) + num_vertices * 4;
  }
  opt.num_threads = 3;
  opt.io_threads = 2;
  opt.max_iterations = 4;
  opt.scratch_dir = scratch;
  return opt;
}

// Runs `program` once fault-free and once per strategy on a 1%-flaky env;
// values must match bit-identically and the injected faults must surface
// as retries, never as errors or wrong results.
template <typename Program>
void RunSoakMatrix(const EdgeList& edges, Program program,
                   EdgeDirection direction, uint64_t soak_seed) {
  auto ms = testing::BuildMemStore(edges, 5);
  uint64_t total_faults = 0;
  for (const StrategyCase& sc : kStrategies) {
    RunOptions clean_opt = SoakOptions(sc.strategy, ms.store->num_vertices(),
                                       std::string("clean_") + sc.name);
    clean_opt.direction = direction;
    Engine<Program> clean(ms.store, program, clean_opt);
    auto clean_stats = clean.Run();
    ASSERT_TRUE(clean_stats.ok()) << sc.name << ": "
                                  << clean_stats.status().ToString();
    EXPECT_EQ(clean_stats->io_retries, 0u) << sc.name;

    FlakyEnv flaky(ms.env.get(),
                   SoakRates(soak_seed + static_cast<uint64_t>(sc.strategy)));
    auto reopened = GraphStore::Open(&flaky, "g");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    RunOptions soak_opt = SoakOptions(sc.strategy, ms.store->num_vertices(),
                                      std::string("soak_") + sc.name);
    soak_opt.direction = direction;
    Engine<Program> soaked(*reopened, program, soak_opt);
    auto stats = soaked.Run();
    ASSERT_TRUE(stats.ok()) << sc.name << " under faults: "
                            << stats.status().ToString();
    EXPECT_EQ(soaked.values(), clean.values())
        << sc.name << " diverged under transient faults";
    if (flaky.injected_faults() > 0) {
      EXPECT_GT(stats->io_retries, 0u) << sc.name;
      EXPECT_GT(stats->retry_wait_seconds, 0.0) << sc.name;
    }
    total_faults += flaky.injected_faults();
  }
  // The matrix as a whole must actually have exercised the fault paths.
  EXPECT_GT(total_faults, 0u);
}

TEST(ResilienceSoakTest, PageRankSurvivesTransientFaults) {
  EdgeList edges = testing::RandomGraph(400, 6000, 21);
  PageRankProgram program;
  program.num_vertices = 400;
  RunSoakMatrix(edges, program, EdgeDirection::kForward, 100);
}

TEST(ResilienceSoakTest, WccSurvivesTransientFaults) {
  EdgeList edges = testing::RandomGraph(400, 6000, 22);
  RunSoakMatrix(edges, WccProgram{}, EdgeDirection::kBoth, 200);
}

TEST(ResilienceSoakTest, BfsSurvivesTransientFaults) {
  EdgeList edges = testing::RandomGraph(400, 6000, 23);
  BfsProgram program;
  program.root = 1;
  RunSoakMatrix(edges, program, EdgeDirection::kForward, 300);
}

// Checkpoint commits ride the same retry layer: a checkpointed run on a
// flaky env still resumes nothing, retries its segment copies/record
// commits, and converges to the clean values.
TEST(ResilienceSoakTest, CheckpointedRunSurvivesTransientFaults) {
  EdgeList edges = testing::RandomGraph(300, 4000, 31);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = 300;

  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 4;
  opt.num_threads = 2;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "ckpt_clean";
  Engine<PageRankProgram> clean(ms.store, program, opt);
  ASSERT_TRUE(clean.Run().ok());

  FlakyEnv flaky(ms.env.get(), SoakRates(77));
  auto reopened = GraphStore::Open(&flaky, "g");
  ASSERT_TRUE(reopened.ok());
  opt.scratch_dir = "ckpt_soak";
  Engine<PageRankProgram> soaked(*reopened, program, opt);
  auto stats = soaked.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->checkpoints_written, 4);
  EXPECT_EQ(soaked.values(), clean.values());
  if (flaky.injected_faults() > 0) EXPECT_GT(stats->io_retries, 0u);
}

// Healthy device: a zero-rate FlakyEnv injects nothing and every
// resilience counter stays at zero — the retry layer must be invisible.
TEST(ResilienceSoakTest, ZeroFaultRateMeansZeroRetries) {
  EdgeList edges = testing::RandomGraph(300, 4000, 41);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = 300;

  FlakyEnv flaky(ms.env.get());
  auto reopened = GraphStore::Open(&flaky, "g");
  ASSERT_TRUE(reopened.ok());
  RunOptions opt;
  opt.strategy = UpdateStrategy::kMixedPhase;
  opt.memory_budget_bytes = 300 * sizeof(double) + 300 * 4;
  opt.max_iterations = 3;
  Engine<PageRankProgram> engine(*reopened, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(flaky.injected_faults(), 0u);
  EXPECT_EQ(stats->io_retries, 0u);
  EXPECT_EQ(stats->retry_wait_seconds, 0.0);
  EXPECT_EQ(stats->checksum_rereads, 0u);
  EXPECT_EQ(stats->backend_downgrades, 0u);
  EXPECT_EQ(stats->dropped_write_errors, 0u);
}

// ---- mid-run backend downgrade --------------------------------------------

class DowngradeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/nxgraph_resilience_XXXXXX";
    root_ = mkdtemp(tmpl);
    ASSERT_FALSE(root_.empty());
  }
  void TearDown() override {
    internal::SetUringFailAfterForTest(0);  // re-arm "never fail"
    ASSERT_TRUE(Env::Default()->RemoveDirRecursively(root_).ok());
  }

  std::string Path(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
};

// The ring dies mid-run: every subsequent submission returns the dead-ring
// -EIO, a permanent error. The engine must reopen its files on the
// buffered Env, restart the interrupted step, and finish with results
// identical to a clean run — one downgrade, reported in RunStats.
TEST_F(DowngradeTest, UringRingDeathDowngradesToBufferedMidRun) {
  if (!UringSupported()) GTEST_SKIP() << "io_uring unavailable";
  EdgeList edges = testing::RandomGraph(500, 7000, 55);
  BuildOptions build;
  build.num_intervals = 5;
  build.build_transpose = true;
  auto store = BuildGraphStore(edges, Path("store"), build);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PageRankProgram program;
  program.num_vertices = (*store)->num_vertices();

  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 4;
  opt.num_threads = 2;
  opt.io_threads = 2;

  RunOptions clean_opt = opt;
  clean_opt.scratch_dir = Path("clean");
  Engine<PageRankProgram> clean(*store, program, clean_opt);
  ASSERT_TRUE(clean.Run().ok());

  opt.io_backend = IoBackend::kUring;
  opt.scratch_dir = Path("uring");
  Engine<PageRankProgram> engine(*store, program, opt);
  // Let setup and some of the run proceed on the ring, then kill it.
  internal::SetUringFailAfterForTest(40);
  auto stats = engine.Run();
  internal::SetUringFailAfterForTest(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->backend_downgrades, 1u);
  EXPECT_EQ(stats->io_backend, "buffered");
  EXPECT_EQ(stats->iterations, 4);
  EXPECT_EQ(engine.values(), clean.values());
}

// Without the kill switch the same run stays on the ring end to end.
TEST_F(DowngradeTest, HealthyUringRunDoesNotDowngrade) {
  if (!UringSupported()) GTEST_SKIP() << "io_uring unavailable";
  EdgeList edges = testing::RandomGraph(300, 4000, 56);
  BuildOptions build;
  build.num_intervals = 4;
  auto store = BuildGraphStore(edges, Path("store"), build);
  ASSERT_TRUE(store.ok());
  PageRankProgram program;
  program.num_vertices = (*store)->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.io_backend = IoBackend::kUring;
  opt.scratch_dir = Path("healthy");
  Engine<PageRankProgram> engine(*store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->backend_downgrades, 0u);
  EXPECT_EQ(stats->io_backend, "uring");
}

}  // namespace
}  // namespace nxgraph
