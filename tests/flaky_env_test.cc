// FlakyEnv unit tests: scripted faults fire on the exact nth op and heal on
// retry, short reads deliver a strict prefix of real data, bit flips corrupt
// the caller's buffer only (a fresh read returns clean bytes), probabilistic
// rates inject with a deterministic replayable schedule, and the non-positional
// paths (sequential/append/metadata) pass through untouched. The store-level
// test closes the loop: a bit-flipped sub-shard read trips the checksum and is
// healed by GraphStore's one re-read.
#include "src/io/flaky_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/nxgraph.h"
#include "src/util/retry.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

using OpKind = FlakyEnv::OpKind;
using FaultKind = FlakyEnv::FaultKind;

class FlakyEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = NewMemEnv();
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(base_->NewWritableFile("f", &w).ok());
    payload_.resize(4096);
    for (size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<char>('a' + i % 26);
    }
    ASSERT_TRUE(w->Append(payload_.data(), payload_.size()).ok());
    ASSERT_TRUE(w->Close().ok());
  }

  std::unique_ptr<Env> base_;
  std::string payload_;
};

TEST_F(FlakyEnvTest, ScriptedReadErrorFiresOnExactNthOpAndHeals) {
  FlakyEnv flaky(base_.get());
  flaky.ScheduleFault(OpKind::kRead, 2, FaultKind::kTransientError);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());

  std::string got(64, '\0');
  size_t n = 0;
  // Read 1: clean.
  ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
  EXPECT_EQ(n, got.size());
  EXPECT_EQ(got, payload_.substr(0, got.size()));
  // Read 2: the scripted transient error — an IOError that is retryable.
  Status s = r->ReadAt(0, got.size(), got.data(), &n);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(s.retryable());
  // Read 3: the very same op, retried, succeeds — the fault healed.
  ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
  EXPECT_EQ(got, payload_.substr(0, got.size()));

  EXPECT_EQ(flaky.op_count(OpKind::kRead), 3u);
  EXPECT_EQ(flaky.injected_errors(), 1u);
  EXPECT_EQ(flaky.injected_faults(), 1u);
}

TEST_F(FlakyEnvTest, ScriptedShortReadDeliversStrictPrefixOfRealData) {
  FlakyEnv flaky(base_.get());
  flaky.ScheduleFault(OpKind::kRead, 1, FaultKind::kShortRead);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());

  std::string got(256, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(16, got.size(), got.data(), &n).ok());
  // Strictly short, and every delivered byte is the real file content —
  // only the length lies, exactly like an interrupted pread.
  EXPECT_LT(n, got.size());
  EXPECT_EQ(got.substr(0, n), payload_.substr(16, n));
  EXPECT_EQ(flaky.injected_short_reads(), 1u);
}

TEST_F(FlakyEnvTest, ScriptedBitFlipCorruptsBufferOnlyAndHealsOnReread) {
  FlakyEnv flaky(base_.get());
  flaky.ScheduleFault(OpKind::kRead, 1, FaultKind::kBitFlip);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());

  std::string got(512, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
  ASSERT_EQ(n, got.size());
  const std::string want = payload_.substr(0, got.size());
  // Exactly one bit differs from the true contents.
  int diff_bits = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    diff_bits += __builtin_popcount(
        static_cast<unsigned char>(got[i] ^ want[i]));
  }
  EXPECT_EQ(diff_bits, 1);
  // The base file is untouched: the re-read returns clean data.
  ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
  EXPECT_EQ(got, want);
  EXPECT_EQ(flaky.injected_bit_flips(), 1u);
}

TEST_F(FlakyEnvTest, ScriptedWriteAndFlushErrorsHealOnRetry) {
  FlakyEnv flaky(base_.get());
  flaky.ScheduleFault(OpKind::kWrite, 1, FaultKind::kTransientError);
  flaky.ScheduleFault(OpKind::kFlush, 1, FaultKind::kTransientError);
  std::unique_ptr<RandomWriteFile> w;
  ASSERT_TRUE(flaky.NewRandomWriteFile("f", &w).ok());

  const std::string data = "overwrite";
  Status s = w->WriteAt(0, data.data(), data.size());
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.retryable());
  // A faulted write performs no base I/O: the file still holds the
  // original bytes.
  {
    std::unique_ptr<RandomAccessFile> r;
    ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());
    std::string got(data.size(), '\0');
    size_t n = 0;
    ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
    EXPECT_EQ(got, payload_.substr(0, data.size()));
  }
  // Retried, the write lands; the flush faults once, then succeeds.
  ASSERT_TRUE(w->WriteAt(0, data.data(), data.size()).ok());
  s = w->Flush();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.retryable());
  ASSERT_TRUE(w->Flush().ok());
  EXPECT_EQ(flaky.injected_errors(), 2u);

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());
  std::string got(data.size(), '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(0, got.size(), got.data(), &n).ok());
  EXPECT_EQ(got, data);
}

TEST_F(FlakyEnvTest, RunWithRetryAbsorbsScriptedFaults) {
  FlakyEnv flaky(base_.get());
  flaky.ScheduleFault(OpKind::kRead, 1, FaultKind::kTransientError);
  flaky.ScheduleFault(OpKind::kRead, 2, FaultKind::kTransientError);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());

  RetryPolicy policy;
  RetryCounters counters;
  std::string got(64, '\0');
  Status s = RunWithRetry(policy, &counters, [&] {
    size_t n = 0;
    NX_RETURN_NOT_OK(r->ReadAt(0, got.size(), got.data(), &n));
    if (n != got.size()) {
      return Status::MakeRetryable(Status::Corruption("short"));
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got, payload_.substr(0, got.size()));
  EXPECT_EQ(counters.io_retries.load(), 2u);
  EXPECT_GT(counters.retry_wait_micros.load(), 0u);
}

TEST_F(FlakyEnvTest, NonPositionalPathsPassThroughEvenAtRateOne) {
  FlakyFaultRates rates;
  rates.read_error = 1.0;
  rates.write_error = 1.0;
  rates.flush_error = 1.0;
  FlakyEnv flaky(base_.get(), rates);

  // Sequential reads, appends and metadata never fault — the store
  // open/build paths are deliberately outside the fault model.
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(flaky.NewWritableFile("seq", &w).ok());
  ASSERT_TRUE(w->Append("hello", 5).ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&flaky, "seq", &contents).ok());
  EXPECT_EQ(contents, "hello");
  EXPECT_TRUE(flaky.FileExists("seq"));
  auto size = flaky.GetFileSize("seq");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  ASSERT_TRUE(flaky.RenameFile("seq", "seq2").ok());
  ASSERT_TRUE(flaky.RemoveFile("seq2").ok());
  EXPECT_EQ(flaky.injected_faults(), 0u);

  // And every positional op faults at rate 1.
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(flaky.NewRandomAccessFile("f", &r).ok());
  char buf[16];
  size_t n = 0;
  EXPECT_FALSE(r->ReadAt(0, sizeof(buf), buf, &n).ok());
  EXPECT_GE(flaky.injected_faults(), 1u);
}

TEST_F(FlakyEnvTest, ProbabilisticScheduleIsDeterministicUnderFixedSeed) {
  FlakyFaultRates rates;
  rates.read_error = 0.2;
  rates.short_read = 0.1;
  rates.bit_flip = 0.1;
  rates.seed = 1234;

  auto run = [&](FlakyEnv* flaky) {
    std::unique_ptr<RandomAccessFile> r;
    NX_CHECK(flaky->NewRandomAccessFile("f", &r).ok());
    std::string trace;
    char buf[32];
    for (int i = 0; i < 200; ++i) {
      size_t n = 0;
      Status s = r->ReadAt(0, sizeof(buf), buf, &n);
      trace += !s.ok() ? 'e' : (n != sizeof(buf) ? 's' : '.');
    }
    return trace;
  };

  FlakyEnv a(base_.get(), rates);
  FlakyEnv b(base_.get(), rates);
  const std::string trace_a = run(&a);
  EXPECT_EQ(trace_a, run(&b));
  EXPECT_GT(a.injected_faults(), 0u);
  EXPECT_EQ(a.injected_errors(), b.injected_errors());
  EXPECT_EQ(a.injected_short_reads(), b.injected_short_reads());
  EXPECT_EQ(a.injected_bit_flips(), b.injected_bit_flips());
  // A zero-rate env over the same op sequence injects nothing.
  FlakyEnv clean(base_.get());
  run(&clean);
  EXPECT_EQ(clean.injected_faults(), 0u);
}

// A bit flip on a sub-shard blob read trips the CRC in SubShard::Decode;
// GraphStore's one re-read returns clean bytes and the load succeeds —
// the heal-on-reread contract end to end at the store layer.
TEST(FlakyStoreTest, BitFlippedSubShardHealsViaChecksumReread) {
  EdgeList edges = testing::RandomGraph(200, 3000, 42);
  auto ms = testing::BuildMemStore(edges, 4);

  FlakyEnv flaky(ms.env.get());
  auto reopened = GraphStore::Open(&flaky, "g");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto store = *reopened;

  flaky.ScheduleFault(FlakyEnv::OpKind::kRead, 1, FlakyEnv::FaultKind::kBitFlip);
  auto ss = store->LoadSubShard(0, 0, /*transpose=*/false);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  EXPECT_EQ(store->checksum_rereads(), 1u);
  EXPECT_EQ(flaky.injected_bit_flips(), 1u);

  // The healed load decodes to the same sub-shard a clean load returns.
  auto clean = ms.store->LoadSubShard(0, 0, /*transpose=*/false);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(ss->num_edges(), clean->num_edges());
}

// A corruption that survives the re-read is real: flip a bit on BOTH the
// first read and the re-read, and the load must fail with Corruption.
TEST(FlakyStoreTest, PersistentCorruptionStillFailsAfterReread) {
  EdgeList edges = testing::RandomGraph(100, 1000, 7);
  auto ms = testing::BuildMemStore(edges, 2);

  FlakyEnv flaky(ms.env.get());
  auto reopened = GraphStore::Open(&flaky, "g");
  ASSERT_TRUE(reopened.ok());
  auto store = *reopened;

  flaky.ScheduleFault(FlakyEnv::OpKind::kRead, 1, FlakyEnv::FaultKind::kBitFlip);
  flaky.ScheduleFault(FlakyEnv::OpKind::kRead, 2, FlakyEnv::FaultKind::kBitFlip);
  auto ss = store->LoadSubShard(0, 0, /*transpose=*/false);
  ASSERT_FALSE(ss.ok());
  EXPECT_TRUE(ss.status().IsCorruption()) << ss.status().ToString();
  EXPECT_EQ(store->checksum_rereads(), 1u);
}

}  // namespace
}  // namespace nxgraph
