// Write-behind queue tests: FIFO-per-offset ordering, byte-budget
// backpressure, group-commit coalescing, error propagation (write and
// flush), Drain-then-reuse, early shutdown with writes still queued, and
// engine-level parity between synchronous (budget 0) and write-behind runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>

#include "src/algos/programs.h"
#include "src/engine/engine.h"
#include "src/io/writeback.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

using namespace std::chrono_literals;

/// RandomWriteFile fake: applies writes to an in-memory buffer, records the
/// order they landed in, and can inject delays, write errors, flush errors,
/// and a start gate.
class FakeWriteFile : public RandomWriteFile {
 public:
  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    const int seq = started_.fetch_add(1);
    if (gate_ != nullptr) gate_->wait();
    if (delay_per_write_count_ > 0) {
      // Earlier writes sleep longer, so any ordering the queue does not
      // enforce would scramble.
      std::this_thread::sleep_for(
          std::chrono::milliseconds((delay_per_write_count_ - seq) * 2));
    }
    if (fail_next_writes_.load() > 0) {
      fail_next_writes_.fetch_sub(1);
      return Status::TransientIOError("fake transient write");
    }
    if (!write_status_.ok()) return write_status_;
    std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.size() < offset + n) buffer_.resize(offset + n);
    std::memcpy(buffer_.data() + offset, data, n);
    applied_.emplace_back(offset,
                          std::string(static_cast<const char*>(data), n));
    return Status::OK();
  }

  Status Flush() override {
    flushes_.fetch_add(1);
    if (fail_next_flushes_.load() > 0) {
      fail_next_flushes_.fetch_sub(1);
      return Status::TransientIOError("fake transient flush");
    }
    return flush_status_;
  }
  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.resize(size);
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

  std::string buffer() {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_;
  }
  std::vector<std::pair<uint64_t, std::string>> applied() {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }
  int started() const { return started_.load(); }
  int flushes() const { return flushes_.load(); }

  Status write_status_;
  Status flush_status_;
  std::shared_future<void>* gate_ = nullptr;
  int delay_per_write_count_ = 0;
  /// When > 0, the next N writes / flushes fail with a retryable
  /// TransientIOError (consulted before write_status_ / flush_status_).
  std::atomic<int> fail_next_writes_{0};
  std::atomic<int> fail_next_flushes_{0};

 private:
  std::mutex mu_;
  std::string buffer_;
  std::vector<std::pair<uint64_t, std::string>> applied_;
  std::atomic<int> started_{0};
  std::atomic<int> flushes_{0};
};

TEST(WritebackQueueTest, FifoPerOffsetOrdering) {
  ThreadPool io(4);
  FakeWriteFile file;
  constexpr int kWrites = 8;
  file.delay_per_write_count_ = kWrites;
  WritebackQueue wb(&io, /*budget=*/1 << 20);
  for (int k = 0; k < kWrites; ++k) {
    ASSERT_TRUE(wb.Push(&file, 0, std::string(4, 'a' + k)).ok());
  }
  ASSERT_TRUE(wb.Drain().ok());
  // Overlapping writes must land in push order, so the last one wins and
  // the applied sequence is exactly the push sequence.
  EXPECT_EQ(file.buffer(), std::string(4, 'a' + kWrites - 1));
  auto applied = file.applied();
  ASSERT_EQ(applied.size(), static_cast<size_t>(kWrites));
  for (int k = 0; k < kWrites; ++k) {
    EXPECT_EQ(applied[k].second, std::string(4, 'a' + k)) << "write " << k;
  }
}

TEST(WritebackQueueTest, DisjointWritesDrainConcurrently) {
  ThreadPool io(4);
  FakeWriteFile file;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  file.gate_ = &open;
  WritebackQueue wb(&io, 1 << 20);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(wb.Push(&file, k * 100, std::string(10, 'x')).ok());
  }
  // All three writes are disjoint, so all should be in flight at once.
  for (int spin = 0; spin < 1000 && file.started() < 3; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(file.started(), 3);
  gate.set_value();
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(wb.pending_bytes(), 0u);
}

TEST(WritebackQueueTest, ByteBudgetAppliesBackpressure) {
  ThreadPool io(2);
  FakeWriteFile file;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  file.gate_ = &open;
  WritebackQueue wb(&io, /*budget=*/100);
  ASSERT_TRUE(wb.Push(&file, 0, std::string(60, 'a')).ok());
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    // 60 + 50 exceeds the budget: this Push must block until the first
    // write lands.
    ASSERT_TRUE(wb.Push(&file, 100, std::string(50, 'b')).ok());
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(second_admitted.load())
      << "Push must block while the budget is full";
  gate.set_value();
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_GT(wb.write_wait_seconds(), 0.0);
}

TEST(WritebackQueueTest, OversizedPayloadAdmittedAlone) {
  ThreadPool io(1);
  FakeWriteFile file;
  WritebackQueue wb(&io, /*budget=*/16);
  // A payload larger than the whole budget must not deadlock the producer.
  ASSERT_TRUE(wb.Push(&file, 0, std::string(1000, 'z')).ok());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.buffer().size(), 1000u);
}

TEST(WritebackQueueTest, WriteErrorSurfacesFromDrain) {
  ThreadPool io(2);
  FakeWriteFile file;
  file.write_status_ = Status::IOError("disk fell over");
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&file, 0, "payload").ok());
  Status s = wb.Drain();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
}

TEST(WritebackQueueTest, FlushErrorSurfacesFromDrain) {
  ThreadPool io(2);
  FakeWriteFile good;
  FakeWriteFile bad;
  bad.flush_status_ = Status::IOError("flush lost power");
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&good, 0, "ok").ok());
  ASSERT_TRUE(wb.Push(&bad, 0, "doomed").ok());
  Status s = wb.Drain();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  // Both targets were flushed even though one failed.
  EXPECT_EQ(good.flushes(), 1);
  EXPECT_EQ(bad.flushes(), 1);
}

TEST(WritebackQueueTest, DrainThenReuse) {
  ThreadPool io(2);
  FakeWriteFile file;
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&file, 0, "first").ok());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.flushes(), 1);
  ASSERT_TRUE(wb.Push(&file, 0, "secnd").ok());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.buffer(), "secnd");
  // Each barrier flushes targets written since the previous one.
  EXPECT_EQ(file.flushes(), 2);
}

TEST(WritebackQueueTest, OrderingDrainDefersFlushToSyncingDrain) {
  ThreadPool io(2);
  FakeWriteFile file;
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&file, 0, "first").ok());
  ASSERT_TRUE(wb.Drain(/*sync=*/false).ok());
  EXPECT_EQ(file.buffer(), "first") << "ordering drains still wait for writes";
  EXPECT_EQ(file.flushes(), 0) << "flush debt is deferred";
  ASSERT_TRUE(wb.Push(&file, 8, "later").ok());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.flushes(), 1) << "the syncing drain settles the debt";
}

TEST(WritebackQueueTest, ErrorResetsAfterDrainReportsIt) {
  ThreadPool io(2);
  FakeWriteFile file;
  file.write_status_ = Status::IOError("transient");
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&file, 0, "fails").ok());
  ASSERT_FALSE(wb.Drain().ok());
  file.write_status_ = Status::OK();
  ASSERT_TRUE(wb.Push(&file, 0, "works").ok());
  EXPECT_TRUE(wb.Drain().ok()) << "a reported error must not stay sticky";
}

TEST(WritebackQueueTest, EarlyShutdownCompletesQueuedWrites) {
  ThreadPool io(1);
  FakeWriteFile file;
  constexpr int kWrites = 16;
  {
    WritebackQueue wb(&io, 1 << 20);
    for (int k = 0; k < kWrites; ++k) {
      ASSERT_TRUE(
          wb.Push(&file, static_cast<uint64_t>(k) * 8, std::string(8, 'w'))
              .ok());
    }
    // Destructor: a write-behind queue must never drop enqueued data.
  }
  // Adjacent writes may group-commit into fewer WriteAts, but every byte
  // must land.
  EXPECT_EQ(file.buffer(), std::string(static_cast<size_t>(kWrites) * 8, 'w'));
  EXPECT_EQ(file.flushes(), 1);
}

TEST(WritebackQueueTest, BudgetZeroWritesSynchronouslyInline) {
  FakeWriteFile file;
  WritebackQueue wb(nullptr, /*budget=*/0);
  ASSERT_TRUE(wb.Push(&file, 0, "sync").ok());
  // The write landed before Push returned; no pool, no pending bytes.
  EXPECT_EQ(file.buffer(), "sync");
  EXPECT_EQ(wb.pending_bytes(), 0u);
  // Synchronous write time is charged as unhidden write wait.
  EXPECT_GE(wb.write_wait_seconds(), 0.0);
  file.write_status_ = Status::IOError("nope");
  EXPECT_TRUE(wb.Push(&file, 0, "fails").IsIOError())
      << "synchronous mode returns the write status directly";
  ASSERT_TRUE(wb.Drain().ok());
  // Budget 0 reproduces the pre-writeback path exactly: no durability
  // flushes are issued on its behalf.
  EXPECT_EQ(file.flushes(), 0);
}

TEST(WritebackQueueTest, ConcurrentProducersAllLand) {
  ThreadPool io(3);
  FakeWriteFile file;
  WritebackQueue wb(&io, /*budget=*/256);  // tight: forces backpressure
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 32;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int k = 0; k < kPerProducer; ++k) {
        const uint64_t off =
            (static_cast<uint64_t>(t) * kPerProducer + k) * 16;
        ASSERT_TRUE(wb.Push(&file, off, std::string(16, 'a' + t)).ok());
      }
    });
  }
  for (auto& p : producers) p.join();
  ASSERT_TRUE(wb.Drain().ok());
  // Group commit may merge adjacent writes into fewer WriteAts; what must
  // hold is that every producer's bytes landed in its region.
  const std::string buffer = file.buffer();
  ASSERT_EQ(buffer.size(), static_cast<size_t>(kProducers) * kPerProducer * 16);
  for (int t = 0; t < kProducers; ++t) {
    const size_t begin = static_cast<size_t>(t) * kPerProducer * 16;
    EXPECT_EQ(buffer.substr(begin, kPerProducer * 16),
              std::string(kPerProducer * 16, 'a' + t))
        << "producer " << t;
  }
}

// ---- group commit ---------------------------------------------------------

TEST(WritebackQueueTest, AdjacentWritesGroupCommitIntoOneWriteAt) {
  ThreadPool io(1);
  FakeWriteFile file;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  file.gate_ = &open;
  WritebackQueue wb(&io, 1 << 20);
  // The first write is issued immediately and parks at the gate; the three
  // adjacent writes at 100/108/116 queue up behind it.
  ASSERT_TRUE(wb.Push(&file, 0, std::string(8, 'h')).ok());
  ASSERT_TRUE(wb.Push(&file, 100, std::string(8, 'a')).ok());
  ASSERT_TRUE(wb.Push(&file, 108, std::string(8, 'b')).ok());
  ASSERT_TRUE(wb.Push(&file, 116, std::string(8, 'c')).ok());
  gate.set_value();
  ASSERT_TRUE(wb.Drain().ok());
  // The adjacent run reached the device as ONE WriteAt with the
  // concatenated payload; bytes are identical to separate writes.
  auto applied = file.applied();
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[1].first, 100u);
  EXPECT_EQ(applied[1].second,
            std::string(8, 'a') + std::string(8, 'b') + std::string(8, 'c'));
  EXPECT_EQ(wb.coalesced_writes(), 2u);
}

TEST(WritebackQueueTest, GapsAreNotGroupCommitted) {
  ThreadPool io(1);
  FakeWriteFile file;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  file.gate_ = &open;
  WritebackQueue wb(&io, 1 << 20);
  ASSERT_TRUE(wb.Push(&file, 0, std::string(8, 'h')).ok());
  // One byte of gap between the queued writes: merging would fabricate
  // data, so they must stay separate.
  ASSERT_TRUE(wb.Push(&file, 100, std::string(8, 'a')).ok());
  ASSERT_TRUE(wb.Push(&file, 109, std::string(8, 'b')).ok());
  gate.set_value();
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.applied().size(), 3u);
  EXPECT_EQ(wb.coalesced_writes(), 0u);
  const std::string buffer = file.buffer();
  EXPECT_EQ(buffer.substr(100, 8), std::string(8, 'a'));
  EXPECT_EQ(buffer.substr(109, 8), std::string(8, 'b'));
}

TEST(WritebackQueueTest, GroupCommitKeepsBarrierAccounting) {
  // A merged write retires every push folded into it: Drain must see the
  // queue empty and the queue must stay reusable afterwards.
  ThreadPool io(2);
  FakeWriteFile file;
  WritebackQueue wb(&io, 1 << 20);
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 64; ++k) {
      ASSERT_TRUE(
          wb.Push(&file, static_cast<uint64_t>(k) * 8, std::string(8, 'r'))
              .ok());
    }
    ASSERT_TRUE(wb.Drain().ok());
    EXPECT_EQ(wb.pending_bytes(), 0u);
  }
  EXPECT_EQ(file.buffer(), std::string(64 * 8, 'r'));
}

// ---- engine parity --------------------------------------------------------

// Out-of-core PageRank results must be bit-identical at every write-behind
// budget: 0 (synchronous), a tiny 64 KiB window, and effectively unbounded.
TEST(EngineWritebackTest, DpuPageRankParityAcrossBudgets) {
  EdgeList edges = testing::RandomGraph(300, 4000, 51);
  auto ms = testing::BuildMemStore(edges, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  // Cached in-memory baseline (no out-of-core writes at all).
  RunOptions cached;
  cached.max_iterations = 4;
  cached.num_threads = 2;
  Engine<PageRankProgram> cached_engine(ms.store, program, cached);
  ASSERT_TRUE(cached_engine.Run().ok());

  for (uint64_t budget : {uint64_t{0}, uint64_t{64} << 10, ~uint64_t{0}}) {
    RunOptions opt;
    opt.strategy = UpdateStrategy::kDoublePhase;
    opt.max_iterations = 4;
    opt.num_threads = 3;
    opt.io_threads = 2;
    opt.writeback_buffer_bytes = budget;
    Engine<PageRankProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->strategy, "DPU");
    EXPECT_EQ(stats->writeback_buffer_bytes, budget);
    EXPECT_GE(stats->write_wait_seconds, 0.0);
    EXPECT_EQ(engine.values(), cached_engine.values())
        << "writeback budget " << budget;
  }
}

TEST(EngineWritebackTest, DpuWccParityAcrossBudgets) {
  EdgeList edges = testing::RandomGraph(200, 900, 52);
  auto ms = testing::BuildMemStore(edges, 4);
  WccProgram program;

  RunOptions cached;
  cached.direction = EdgeDirection::kBoth;
  cached.num_threads = 2;
  Engine<WccProgram> cached_engine(ms.store, program, cached);
  ASSERT_TRUE(cached_engine.Run().ok());

  for (uint64_t budget : {uint64_t{0}, uint64_t{64} << 10, ~uint64_t{0}}) {
    RunOptions opt;
    opt.strategy = UpdateStrategy::kDoublePhase;
    opt.direction = EdgeDirection::kBoth;
    opt.num_threads = 3;
    opt.io_threads = 2;
    opt.writeback_buffer_bytes = budget;
    Engine<WccProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(engine.values(), cached_engine.values())
        << "writeback budget " << budget;
  }
}

// MPU under a limited memory budget exercises writeback on the streaming
// read path too (Phase B rows stream while hubs and intervals write back).
TEST(EngineWritebackTest, MpuStreamingParityAcrossBudgets) {
  EdgeList edges = testing::RandomGraph(400, 5000, 53);
  auto ms = testing::BuildMemStore(edges, 6);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  std::vector<double> baseline;
  for (uint64_t budget : {uint64_t{0}, uint64_t{64} << 10, ~uint64_t{0}}) {
    RunOptions opt;
    opt.strategy = UpdateStrategy::kMixedPhase;
    // Roughly half the intervals resident; too small to cache sub-shards,
    // so reads stream while writes go through the write-behind queue.
    opt.memory_budget_bytes = ms.store->num_vertices() * sizeof(double) +
                              ms.store->num_vertices() * 4;
    opt.max_iterations = 4;
    opt.num_threads = 2;
    opt.writeback_buffer_bytes = budget;
    Engine<PageRankProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats->resident_intervals, 0u);
    EXPECT_LT(stats->resident_intervals, 6u);
    if (baseline.empty()) {
      baseline = engine.values();
    } else {
      EXPECT_EQ(engine.values(), baseline) << "writeback budget " << budget;
    }
  }
}

TEST(EngineWritebackTest, SpuRunsReportNoWritebackBuffer) {
  EdgeList edges = testing::RandomGraph(100, 800, 54);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.max_iterations = 2;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->strategy, "SPU");
  // Fully resident runs have no out-of-core writes to hide.
  EXPECT_EQ(stats->writeback_buffer_bytes, 0u);
  EXPECT_EQ(stats->write_wait_seconds, 0.0);
}

TEST(EngineWritebackTest, DefaultOutOfCoreRunUsesWriteback) {
  EdgeList edges = testing::RandomGraph(200, 2500, 55);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.num_threads = 2;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  // Write-behind is on by default for out-of-core runs.
  EXPECT_EQ(stats->writeback_buffer_bytes, opt.writeback_buffer_bytes);
  EXPECT_GT(stats->bytes_written, 0u);
}

// ---- transient faults, parked failures, degradation ------------------------

TEST(WritebackResilienceTest, TransientWriteFailuresRetriedInvisibly) {
  ThreadPool io(2);
  FakeWriteFile file;
  file.fail_next_writes_ = 2;
  RetryCounters counters;
  WritebackQueue wb(&io, 1 << 20, RetryPolicy{}, &counters);
  ASSERT_TRUE(wb.Push(&file, 0, std::string("payload")).ok());
  ASSERT_TRUE(wb.Drain().ok());
  EXPECT_EQ(file.buffer(), "payload");
  EXPECT_GE(counters.io_retries.load(), 2u);
  EXPECT_FALSE(wb.degraded());
  EXPECT_EQ(wb.dropped_write_errors(), 0u);
}

TEST(WritebackResilienceTest, TransientFlushFailureRetriedAtDrain) {
  ThreadPool io(2);
  FakeWriteFile file;
  RetryCounters counters;
  WritebackQueue wb(&io, 1 << 20, RetryPolicy{}, &counters);
  ASSERT_TRUE(wb.Push(&file, 0, std::string("data")).ok());
  file.fail_next_flushes_ = 1;
  ASSERT_TRUE(wb.Drain().ok());
  // First flush attempt faulted, the retry succeeded.
  EXPECT_GE(file.flushes(), 2);
  EXPECT_GE(counters.io_retries.load(), 1u);
}

// A write that fails permanently in flight is parked with its payload; if
// the condition clears by the next Drain barrier, the synchronous
// re-attempt lands it and no error ever surfaces. ENOSPC additionally
// flips the queue into degraded (inline) mode, where Push returns each
// write's status directly instead of queueing more doomed writes.
TEST(WritebackResilienceTest, EnospcDegradesAndParkedWriteHealsAtDrain) {
  ThreadPool io(2);
  FakeWriteFile file;
  RetryCounters counters;
  WritebackQueue wb(&io, 1 << 20, RetryPolicy{}, &counters);

  file.write_status_ = Status::FromErrno("write", ENOSPC);
  ASSERT_TRUE(wb.Push(&file, 0, std::string("hello")).ok());  // async: parks
  for (int spin = 0; spin < 5000 && !wb.degraded(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(wb.degraded());

  // Degraded Push writes inline and hands the failure to the producer.
  Status s = wb.Push(&file, 100, std::string("doomed"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.sys_errno(), ENOSPC);

  // Space comes back before the barrier: the inline path works again and
  // the parked write heals at Drain — no error surfaces at all.
  file.write_status_ = Status::OK();
  ASSERT_TRUE(wb.Push(&file, 100, std::string("world")).ok());
  ASSERT_TRUE(wb.Drain().ok());
  std::string buffer = file.buffer();
  EXPECT_EQ(buffer.substr(0, 5), "hello");
  EXPECT_EQ(buffer.substr(100, 5), "world");
  EXPECT_EQ(wb.dropped_write_errors(), 0u);
  EXPECT_TRUE(wb.degraded());  // sticky for the life of the queue
}

// Repeated permanent failures (a dead device, not ENOSPC) also degrade the
// queue, and Drain reports the first error while counting and logging the
// suppressed rest.
TEST(WritebackResilienceTest, DeadQueueDegradesAndCountsSuppressedErrors) {
  ThreadPool io(4);
  FakeWriteFile file;
  RetryCounters counters;
  WritebackQueue wb(&io, 1 << 20, RetryPolicy{}, &counters);
  file.write_status_ = Status::IOError("fake dead device");
  constexpr int kWrites = 10;
  for (int k = 0; k < kWrites; ++k) {
    // Disjoint offsets so every write is issued (and fails) independently.
    // Once the dead-queue threshold trips, Push turns inline and returns
    // the failure directly; both outcomes keep the pressure on.
    (void)wb.Push(&file, static_cast<uint64_t>(k) * 64, std::string(8, 'x'));
  }
  for (int spin = 0; spin < 5000 && !wb.degraded(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(wb.degraded());
  Status s = wb.Drain();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  // Every parked write re-failed at the barrier; one became the return
  // value, the rest were suppressed (counted + logged).
  EXPECT_GE(wb.dropped_write_errors(), 1u);
  EXPECT_EQ(counters.dropped_write_errors.load(), wb.dropped_write_errors());
}

}  // namespace
}  // namespace nxgraph
