// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure). Each binary prints the paper-style table/series plus CSV.
//
// Sizing: graphs are the synthetic stand-ins of DESIGN.md §3, scaled to
// laptop size. Set NXGRAPH_FULL=1 (or pass --full) for sizes closer to the
// paper's; default "quick" sizes keep every binary in tens of seconds.
#ifndef NXGRAPH_BENCH_BENCH_COMMON_H_
#define NXGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/algos/programs.h"
#include "src/baselines/graphchi_like.h"
#include "src/baselines/turbograph_like.h"
#include "src/baselines/xstream_like.h"
#include "src/core/nxgraph.h"

namespace nxgraph {
namespace bench {

inline bool FullMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("NXGRAPH_FULL");
  return env != nullptr && env[0] == '1';
}

/// `--json` (or NXGRAPH_BENCH_JSON=1): benches additionally write each
/// summary table as a machine-readable `BENCH_<name>.json` file in the
/// working directory (see Table::WriteJson) — for CI trend tracking and
/// scripted regression gates, without parsing the human tables.
inline bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  const char* env = std::getenv("NXGRAPH_BENCH_JSON");
  return env != nullptr && env[0] == '1';
}

/// Quick-mode scale divisors per dataset (paper scale / divisor).
inline uint64_t Divisor(const std::string& dataset, bool full) {
  uint64_t d = 512;
  if (dataset == "live-journal-sim") d = 128;
  if (dataset == "twitter-sim") d = 512;
  if (dataset == "yahoo-web-sim") d = 2048;
  if (dataset.rfind("delaunay", 0) == 0) d = 64;
  return full ? std::max<uint64_t>(d / 8, 1) : d;
}

/// Builds (or reuses a previously built) store for a registered dataset.
/// Stores are cached under /tmp/nxgraph_bench so repeated binaries skip
/// preprocessing.
inline std::shared_ptr<GraphStore> GetStore(const std::string& dataset,
                                            uint32_t p, bool full,
                                            bool transpose = true) {
  const uint64_t divisor = Divisor(dataset, full);
  const std::string dir = "/tmp/nxgraph_bench/" + dataset + "_p" +
                          std::to_string(p) + "_d" + std::to_string(divisor) +
                          (transpose ? "_t" : "");
  Env* env = Env::Default();
  if (env->FileExists(dir + "/manifest.nxm")) {
    auto store = OpenGraphStore(dir);
    if (store.ok()) return *store;
  }
  auto edges = MakeDataset(dataset, divisor);
  NX_CHECK(edges.ok()) << edges.status().ToString();
  BuildOptions options;
  options.num_intervals = p;
  options.build_transpose = transpose;
  auto store = BuildGraphStore(*edges, dir, options);
  NX_CHECK(store.ok()) << store.status().ToString();
  return *store;
}

/// Builds (or reuses) a forward-only store of `dataset` written in a
/// specific sub-shard format, cached under /tmp/nxgraph_bench like
/// GetStore. The single home of the format-store path scheme, shared by
/// bench_format and bench_table2_iomodel so they always measure the same
/// stores.
inline std::shared_ptr<GraphStore> GetFormatStore(const std::string& dataset,
                                                  uint32_t p,
                                                  uint64_t divisor,
                                                  SubShardFormat format) {
  const std::string dir = "/tmp/nxgraph_bench/fmt_" + dataset + "_p" +
                          std::to_string(p) + "_d" + std::to_string(divisor) +
                          "_" + SubShardFormatName(format);
  if (Env::Default()->FileExists(dir + "/" + kManifestFileName)) {
    auto store = OpenGraphStore(dir);
    if (store.ok()) return *store;
  }
  auto edges = MakeDataset(dataset, divisor);
  NX_CHECK(edges.ok()) << edges.status().ToString();
  BuildOptions options;
  options.num_intervals = p;
  options.build_transpose = false;
  options.subshard_format = format;
  auto store = BuildGraphStore(*edges, dir, options);
  NX_CHECK(store.ok()) << store.status().ToString();
  return *store;
}

/// Engines compared across the experiments.
enum class EngineKind {
  kNxCallback,
  kNxLock,
  kGraphChiLike,
  kTurboGraphLike,
  kXStreamLike,
};

inline const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNxCallback:
      return "NXgraph(callback)";
    case EngineKind::kNxLock:
      return "NXgraph(lock)";
    case EngineKind::kGraphChiLike:
      return "GraphChi-like";
    case EngineKind::kTurboGraphLike:
      return "TurboGraph-like";
    case EngineKind::kXStreamLike:
      return "X-Stream-like";
  }
  return "?";
}

/// Runs `iterations` of PageRank with the given engine; returns stats.
inline RunStats RunPageRankWith(EngineKind kind,
                                std::shared_ptr<GraphStore> store,
                                RunOptions opt, int iterations = 10) {
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  opt.max_iterations = iterations;
  opt.direction = EdgeDirection::kForward;
  auto run = [&](auto&& engine) {
    auto stats = engine.Run();
    NX_CHECK(stats.ok()) << stats.status().ToString();
    return *stats;
  };
  switch (kind) {
    case EngineKind::kNxCallback:
      opt.sync_mode = SyncMode::kCallback;
      return run(Engine<PageRankProgram>(store, program, opt));
    case EngineKind::kNxLock:
      opt.sync_mode = SyncMode::kLock;
      return run(Engine<PageRankProgram>(store, program, opt));
    case EngineKind::kGraphChiLike:
      return run(GraphChiLikeEngine<PageRankProgram>(store, program, opt));
    case EngineKind::kTurboGraphLike:
      return run(TurboGraphLikeEngine<PageRankProgram>(store, program, opt));
    case EngineKind::kXStreamLike:
      return run(XStreamLikeEngine<PageRankProgram>(store, program, opt));
  }
  return {};
}

/// Runs BFS from vertex 0 (the paper sets the root to the first vertex).
inline RunStats RunBfsWith(EngineKind kind, std::shared_ptr<GraphStore> store,
                           RunOptions opt) {
  BfsProgram program;
  program.root = 0;
  opt.direction = EdgeDirection::kForward;
  auto run = [&](auto&& engine) {
    auto stats = engine.Run();
    NX_CHECK(stats.ok()) << stats.status().ToString();
    return *stats;
  };
  switch (kind) {
    case EngineKind::kNxCallback:
      opt.sync_mode = SyncMode::kCallback;
      return run(Engine<BfsProgram>(store, program, opt));
    case EngineKind::kNxLock:
      opt.sync_mode = SyncMode::kLock;
      return run(Engine<BfsProgram>(store, program, opt));
    case EngineKind::kGraphChiLike:
      return run(GraphChiLikeEngine<BfsProgram>(store, program, opt));
    case EngineKind::kTurboGraphLike:
      return run(TurboGraphLikeEngine<BfsProgram>(store, program, opt));
    case EngineKind::kXStreamLike:
      return run(XStreamLikeEngine<BfsProgram>(store, program, opt));
  }
  return {};
}

/// Runs WCC (NXgraph engines and GraphChi-like support both directions;
/// the other baselines are forward-only and are not called here).
inline RunStats RunWccWith(EngineKind kind, std::shared_ptr<GraphStore> store,
                           RunOptions opt) {
  WccProgram program;
  opt.direction = EdgeDirection::kBoth;
  auto run = [&](auto&& engine) {
    auto stats = engine.Run();
    NX_CHECK(stats.ok()) << stats.status().ToString();
    return *stats;
  };
  switch (kind) {
    case EngineKind::kNxCallback:
      opt.sync_mode = SyncMode::kCallback;
      return run(Engine<WccProgram>(store, program, opt));
    case EngineKind::kNxLock:
      opt.sync_mode = SyncMode::kLock;
      return run(Engine<WccProgram>(store, program, opt));
    case EngineKind::kGraphChiLike:
      return run(GraphChiLikeEngine<WccProgram>(store, program, opt));
    default:
      NX_CHECK(false) << "WCC unsupported for " << EngineName(kind);
  }
  return {};
}

/// Runs the full multi-round SCC (NXgraph engines only).
inline RunStats RunSccWith(EngineKind kind, std::shared_ptr<GraphStore> store,
                           RunOptions opt) {
  opt.sync_mode =
      kind == EngineKind::kNxLock ? SyncMode::kLock : SyncMode::kCallback;
  auto result = RunScc(store, opt);
  NX_CHECK(result.ok()) << result.status().ToString();
  return result->stats;
}

/// Simple fixed-width table printer for the paper-style summaries.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

  void PrintCsv() const {
    auto print_row = [](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

  /// Writes the table as `BENCH_<name>.json`: a JSON array of one object
  /// per row, keyed by header. Cells that parse fully as numbers are
  /// emitted as JSON numbers, everything else as strings. Returns false
  /// (after a warning) if the file cannot be written — benches report,
  /// they don't abort.
  bool WriteJson(const std::string& name) const {
    const std::string path = "BENCH_" + name + ".json";
    std::string out = "[\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += "  {";
      for (size_t c = 0; c < headers_.size(); ++c) {
        if (c) out += ", ";
        out += JsonQuote(headers_[c]) + ": ";
        const std::string& cell = c < rows_[r].size() ? rows_[r][c] : "";
        out += IsJsonNumber(cell) ? cell : JsonQuote(cell);
      }
      out += r + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    bool ok =
        f != nullptr && std::fwrite(out.data(), 1, out.size(), f) == out.size();
    if (f != nullptr) ok = std::fclose(f) == 0 && ok;
    if (!ok) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string JsonQuote(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += '"';
    return out;
  }

  static bool IsJsonNumber(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bench
}  // namespace nxgraph

#endif  // NXGRAPH_BENCH_BENCH_COMMON_H_
