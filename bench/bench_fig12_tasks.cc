// Fig. 12 (Exp 7): BFS / SCC / WCC elapsed time on the three real-world
// stand-ins. SCC runs on the NXgraph engines (the paper notes TurboGraph
// ships no SCC and its BFS crashes; our TurboGraph-like baseline runs BFS
// but has no transpose support, hence no SCC/WCC row — matching the
// paper's gaps).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string dataset;
  std::string algo;
  std::string engine;
  double seconds;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const char* datasets[] = {"live-journal-sim", "twitter-sim",
                            "yahoo-web-sim"};

  for (const char* dataset : datasets) {
    auto store = bench::GetStore(dataset, 16, full);
    struct Config {
      const char* algo;
      bench::EngineKind kind;
    };
    const Config configs[] = {
        {"BFS", bench::EngineKind::kNxCallback},
        {"BFS", bench::EngineKind::kNxLock},
        {"BFS", bench::EngineKind::kGraphChiLike},
        {"BFS", bench::EngineKind::kTurboGraphLike},
        {"SCC", bench::EngineKind::kNxCallback},
        {"SCC", bench::EngineKind::kNxLock},
        {"WCC", bench::EngineKind::kNxCallback},
        {"WCC", bench::EngineKind::kNxLock},
        {"WCC", bench::EngineKind::kGraphChiLike},
    };
    for (const Config& config : configs) {
      std::string name = std::string(dataset) + "/" + config.algo + "/" +
                         bench::EngineName(config.kind);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            RunOptions opt;
            opt.num_threads = 4;
            RunStats stats;
            for (auto _ : st) {
              if (std::string(config.algo) == "BFS") {
                stats = bench::RunBfsWith(config.kind, store, opt);
              } else if (std::string(config.algo) == "SCC") {
                stats = bench::RunSccWith(config.kind, store, opt);
              } else {
                stats = bench::RunWccWith(config.kind, store, opt);
              }
            }
            st.counters["MTEPS"] = stats.Mteps();
            g_rows.push_back(Row{dataset, config.algo,
                                 bench::EngineName(config.kind),
                                 stats.seconds});
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 12: BFS, SCC and WCC (elapsed seconds; '-' = not "
              "supported by that engine, as in the paper) ===\n");
  for (const char* dataset : datasets) {
    std::printf("\n-- %s --\n", dataset);
    bench::Table table({"Engine", "BFS", "SCC", "WCC"});
    const bench::EngineKind engines[] = {
        bench::EngineKind::kNxCallback, bench::EngineKind::kNxLock,
        bench::EngineKind::kGraphChiLike, bench::EngineKind::kTurboGraphLike};
    for (auto kind : engines) {
      std::vector<std::string> row{bench::EngineName(kind), "-", "-", "-"};
      for (const auto& r : g_rows) {
        if (r.dataset != dataset || r.engine != bench::EngineName(kind)) {
          continue;
        }
        size_t col = r.algo == "BFS" ? 1 : r.algo == "SCC" ? 2 : 3;
        row[col] = bench::Fmt(r.seconds);
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper Fig. 12): NXgraph leads on all tasks thanks to "
      "interval-activity skipping; GraphChi-like lags most on targeted "
      "queries (it rescans every shard per iteration).\n");
  return 0;
}
