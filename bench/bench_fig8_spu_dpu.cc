// Fig. 8 (Exp 3): SPU vs DPU across thread counts and memory budgets on
// PageRank / BFS / SCC (twitter-sim). SPU should win everywhere; the gap
// is the cost of hub traffic (paper: DPU is 2-3x slower).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string sweep;  // "threads" or "memory"
  std::string algo;
  std::string strategy;
  uint64_t x;  // thread count or budget MiB
  double seconds;
};
std::vector<Row> g_rows;

RunStats RunAlgo(const std::string& algo, std::shared_ptr<GraphStore> store,
                 const RunOptions& opt) {
  if (algo == "PageRank") {
    return bench::RunPageRankWith(bench::EngineKind::kNxCallback, store, opt,
                                  10);
  }
  if (algo == "BFS") {
    return bench::RunBfsWith(bench::EngineKind::kNxCallback, store, opt);
  }
  return bench::RunSccWith(bench::EngineKind::kNxCallback, store, opt);
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  auto store = bench::GetStore("twitter-sim", 16, full);
  const uint64_t state_bytes = 2 * store->num_vertices() * sizeof(double) +
                               store->num_vertices() * 4;

  // Threads sweep (budget unlimited for SPU; DPU is forced disk-resident).
  for (const char* algo : {"PageRank", "BFS", "SCC"}) {
    for (const char* strategy : {"SPU", "DPU"}) {
      for (int threads : {1, 2, 4}) {
        std::string name = std::string(algo) + "/" + strategy +
                           "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              RunOptions opt;
              opt.num_threads = threads;
              opt.strategy = std::string(strategy) == "SPU"
                                 ? UpdateStrategy::kSinglePhase
                                 : UpdateStrategy::kDoublePhase;
              RunStats stats;
              for (auto _ : st) stats = RunAlgo(algo, store, opt);
              st.counters["MTEPS"] = stats.Mteps();
              g_rows.push_back(
                  {"threads", algo, strategy,
                   static_cast<uint64_t>(threads), stats.seconds});
            })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
  // Memory sweep on PageRank: SPU uses the budget for sub-shard caching;
  // DPU ignores it (the paper's point: DPU is budget-insensitive).
  for (const char* strategy : {"SPU", "DPU"}) {
    for (double fraction : {0.5, 1.0, 2.0, 4.0}) {
      const uint64_t budget =
          static_cast<uint64_t>(fraction * state_bytes);
      std::string name = std::string("PageRank/") + strategy +
                         "/budgetMiB:" + std::to_string(budget >> 20);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            RunOptions opt;
            opt.num_threads = 4;
            opt.memory_budget_bytes = budget;
            opt.strategy = std::string(strategy) == "SPU"
                               ? UpdateStrategy::kSinglePhase
                               : UpdateStrategy::kDoublePhase;
            RunStats stats;
            for (auto _ : st) stats = RunAlgo("PageRank", store, opt);
            st.counters["bytes_read"] =
                static_cast<double>(stats.bytes_read);
            g_rows.push_back({"memory", "PageRank", strategy, budget >> 20,
                              stats.seconds});
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 8: SPU vs DPU (twitter-sim, elapsed seconds) ===\n");
  std::printf("\n-- thread sweep --\n");
  bench::Table threads_table({"Algo", "Strategy", "1 thread", "2 threads",
                              "4 threads"});
  for (const char* algo : {"PageRank", "BFS", "SCC"}) {
    for (const char* strategy : {"SPU", "DPU"}) {
      std::vector<std::string> row{algo, strategy, "-", "-", "-"};
      for (const auto& r : g_rows) {
        if (r.sweep != "threads" || r.algo != algo || r.strategy != strategy) {
          continue;
        }
        size_t col = r.x == 1 ? 2 : r.x == 2 ? 3 : 4;
        row[col] = bench::Fmt(r.seconds);
      }
      threads_table.AddRow(row);
    }
  }
  threads_table.Print();

  std::printf("\n-- memory sweep (PageRank, 4 threads) --\n");
  bench::Table mem_table({"Strategy", "Budget(MiB)", "Seconds"});
  for (const auto& r : g_rows) {
    if (r.sweep != "memory") continue;
    mem_table.AddRow(
        {r.strategy, std::to_string(r.x), bench::Fmt(r.seconds)});
  }
  mem_table.Print();
  std::printf(
      "\nShape check (paper Fig. 8): SPU beats DPU in every cell; both scale "
      "with threads; DPU is flat across budgets while SPU improves once the "
      "budget caches all sub-shards.\n");
  return 0;
}
