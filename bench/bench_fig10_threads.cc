// Fig. 10 (Exp 5): 10-iteration PageRank elapsed time vs thread count on
// the three real-world stand-ins (memory unconstrained, as the paper's
// 16 GB setting keeps these graphs resident).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string dataset;
  std::string engine;
  int threads;
  double seconds;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const char* datasets[] = {"live-journal-sim", "twitter-sim",
                            "yahoo-web-sim"};
  const bench::EngineKind engines[] = {
      bench::EngineKind::kNxCallback, bench::EngineKind::kNxLock,
      bench::EngineKind::kGraphChiLike, bench::EngineKind::kTurboGraphLike};
  const int threads_axis[] = {1, 2, 4};

  for (const char* dataset : datasets) {
    auto store = bench::GetStore(dataset, 16, full);
    for (auto kind : engines) {
      for (int threads : threads_axis) {
        std::string name = std::string(dataset) + "/" +
                           bench::EngineName(kind) +
                           "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              RunOptions opt;
              opt.num_threads = threads;
              RunStats stats;
              for (auto _ : st) {
                stats = bench::RunPageRankWith(kind, store, opt, 10);
              }
              st.counters["MTEPS"] = stats.Mteps();
              g_rows.push_back(
                  Row{dataset, bench::EngineName(kind), threads,
                      stats.seconds});
            })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 10: PageRank x10 vs thread count "
              "(elapsed seconds) ===\n");
  for (const char* dataset : datasets) {
    std::printf("\n-- %s --\n", dataset);
    bench::Table table({"Engine", "1 thread", "2 threads", "4 threads"});
    for (auto kind : engines) {
      std::vector<std::string> row{bench::EngineName(kind), "-", "-", "-"};
      for (const auto& r : g_rows) {
        if (r.dataset != dataset || r.engine != bench::EngineName(kind)) {
          continue;
        }
        size_t col = r.threads == 1 ? 1 : r.threads == 2 ? 2 : 3;
        row[col] = bench::Fmt(r.seconds);
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper Fig. 10): NXgraph scales with threads "
      "(fine-grained, conflict-free chunks) and stays fastest; the "
      "coarse-grained baselines gain less from added threads. (This host "
      "has fewer cores than the paper's hexa-core testbed, so the axis "
      "stops at 4.)\n");
  return 0;
}
