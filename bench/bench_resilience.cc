// Resilience overhead benchmark: forced-DPU PageRank on a throttled SSD
// Env with a FlakyEnv layer injecting transient faults at increasing
// rates. Two claims are measured:
//
//   1. the retry layer is free on a healthy device — wall-clock at fault
//      rate 0 with the default RetryPolicy must be within 3% of a
//      max_attempts=1 run that cannot retry at all;
//   2. under real fault rates (0.1%, 1%) the run degrades gracefully —
//      bounded backoff waits, no failures — instead of dying, and the
//      RunStats tallies (io_retries, retry_wait_seconds) account for the
//      added wall-clock.
//
// `--json` additionally writes BENCH_resilience.json for CI trend gates.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/io/flaky_env.h"

namespace nxgraph {
namespace {

int g_scratch_counter = 0;

RunStats RunFlaky(const std::string& store_dir, Env* base,
                  const FlakyFaultRates& rates, const RetryPolicy& retry,
                  int iterations) {
  FlakyEnv flaky(base, rates);
  auto store = OpenGraphStore(store_dir, &flaky);
  NX_CHECK(store.ok()) << store.status().ToString();
  PageRankProgram program;
  program.num_vertices = (*store)->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = iterations;
  opt.num_threads = 3;
  opt.io_threads = 1;  // one reader keeps the modelled disk sequential
  opt.retry = retry;
  opt.scratch_dir =
      store_dir + "/resilience_run" + std::to_string(g_scratch_counter++);
  Engine<PageRankProgram> engine(*store, program, opt);
  auto stats = engine.Run();
  NX_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const bool json = bench::JsonMode(argc, argv);

  std::printf(
      "=== Retry-layer overhead: forced-DPU PageRank on a throttled SSD "
      "Env (live-journal-sim, P=16, 3 compute threads) ===\n\n");
  auto store = bench::GetStore("live-journal-sim", 16, full);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  const int iterations = full ? 10 : 5;
  const int reps = full ? 5 : 3;

  struct Config {
    const char* name;
    double rate;     // applied to read/write/flush errors and short reads
    int attempts;    // RetryPolicy::max_attempts (1 = retries disabled)
  };
  const Config configs[] = {
      {"no-retry baseline", 0.0, 1},
      {"rate 0", 0.0, 0},     // 0 = default attempts
      {"rate 0.1%", 0.001, 0},
      {"rate 1%", 0.01, 0},
  };

  bench::Table table({"Config", "Wall (s)", "vs baseline", "Retries",
                      "Retry wait (s)", "MTEPS"});
  double baseline_seconds = 0;
  for (const Config& c : configs) {
    FlakyFaultRates rates;
    rates.read_error = c.rate;
    rates.write_error = c.rate;
    rates.flush_error = c.rate;
    rates.short_read = c.rate;
    RetryPolicy retry;
    if (c.attempts > 0) retry.max_attempts = c.attempts;
    // Best-of-reps for the fault-free configs (the <3% claim needs the
    // noise floor, not the scheduler's mood); faulted runs are single-shot
    // — their wall-clock legitimately includes the backoff waits.
    RunStats stats = RunFlaky(store->dir(), env.get(), rates, retry,
                              iterations);
    if (c.rate == 0.0) {
      for (int r = 1; r < reps; ++r) {
        RunStats again = RunFlaky(store->dir(), env.get(), rates, retry,
                                  iterations);
        if (again.seconds < stats.seconds) stats = again;
      }
    }
    if (baseline_seconds == 0) baseline_seconds = stats.seconds;
    table.AddRow({c.name, bench::Fmt(stats.seconds, 3),
                  bench::Fmt(stats.seconds / baseline_seconds, 3) + "x",
                  std::to_string(stats.io_retries),
                  bench::Fmt(stats.retry_wait_seconds, 3),
                  bench::Fmt(stats.Mteps(), 1)});
    if (c.rate == 0.0 && c.attempts == 0) {
      const double overhead =
          (stats.seconds - baseline_seconds) / baseline_seconds * 100.0;
      std::printf("retry-layer overhead at fault rate 0: %+.2f%% (target "
                  "< 3%%)\n",
                  overhead);
    }
  }
  std::printf("\n");
  table.Print();
  std::printf("\nCSV:\n");
  table.PrintCsv();
  if (json) table.WriteJson("resilience");
  return 0;
}
