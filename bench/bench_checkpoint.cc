// Checkpoint overhead benchmark: forced-DPU PageRank on a throttled SSD
// Env, sweeping the checkpoint interval. At interval 1 the checkpoint adds
// only a durability flush and the atomic record commit per iteration (DPU
// has no resident intervals to persist), so the target is < 3% wall-clock
// over a run with checkpointing off; sparser checkpoints additionally copy
// the non-resident segments into the side snapshot store, paying more per
// checkpoint but less often.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/util/byte_size.h"

namespace nxgraph {
namespace {

int g_scratch_counter = 0;

RunStats RunAtInterval(std::shared_ptr<GraphStore> throttled, int interval,
                       int iterations) {
  PageRankProgram program;
  program.num_vertices = throttled->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;  // every iteration on disk
  opt.max_iterations = iterations;
  opt.num_threads = 2;
  opt.io_threads = 2;
  opt.writeback_threads = 4;
  opt.checkpoint_interval = interval;
  // Fresh scratch per run: a leftover checkpoint would turn the next run
  // into an instant resume and measure nothing.
  opt.scratch_dir = throttled->dir() + "/bench_ckpt_" +
                    std::to_string(g_scratch_counter++);
  throttled->env()->RemoveDirRecursively(opt.scratch_dir);
  Engine<PageRankProgram> engine(throttled, program, opt);
  auto stats = engine.Run();
  NX_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

void BM_CheckpointInterval(benchmark::State& state) {
  auto store = bench::GetStore("live-journal-sim", 32, false);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok());
  for (auto _ : state) {
    auto r = RunAtInterval(*throttled, static_cast<int>(state.range(0)), 3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckpointInterval)->Arg(0)->Arg(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Checkpoint overhead: forced-DPU PageRank on a throttled SSD Env "
      "(live-journal-sim, P=32, 2 compute threads) ===\n\n");
  auto store = bench::GetStore("live-journal-sim", 32, full);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok()) << throttled.status().ToString();

  const int iterations = full ? 10 : 5;
  bench::Table table({"Interval", "Wall (s)", "Ckpt (s)", "Ckpts", "MTEPS",
                      "Overhead vs off"});
  double off_seconds = 0;
  for (int interval : {0, 1, 4}) {
    RunStats stats = RunAtInterval(*throttled, interval, iterations);
    if (interval == 0) off_seconds = stats.seconds;
    const double overhead =
        off_seconds > 0 ? (stats.seconds / off_seconds - 1.0) * 100.0 : 0.0;
    table.AddRow({interval == 0 ? "off" : std::to_string(interval),
                  bench::Fmt(stats.seconds, 3),
                  bench::Fmt(stats.checkpoint_seconds, 3),
                  std::to_string(stats.checkpoints_written),
                  bench::Fmt(stats.Mteps(), 1),
                  interval == 0 ? "-" : bench::Fmt(overhead, 1) + "%"});
  }
  table.Print();
  std::printf(
      "\nShape check: interval 1 adds only the durability flush and the "
      "atomic record commit per iteration (target < 3%% wall-clock); "
      "interval 4 pays the side snapshot copy but only every 4th "
      "boundary.\n");
  return 0;
}
