// Fig. 7 (Exp 2): elapsed time vs number of intervals P for PageRank
// (global query), BFS and SCC (targeted queries). The paper runs Twitter;
// quick mode uses the Twitter stand-in at reduced scale.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string algo;
  uint32_t p;
  double seconds;
};
std::vector<Row> g_rows;

void RunConfig(benchmark::State& state, const char* algo, uint32_t p,
               bool full) {
  auto store = bench::GetStore("twitter-sim", p, full);
  RunOptions opt;
  opt.num_threads = 4;
  RunStats stats;
  for (auto _ : state) {
    if (std::string(algo) == "PageRank") {
      stats = bench::RunPageRankWith(bench::EngineKind::kNxCallback, store,
                                     opt, 10);
    } else if (std::string(algo) == "BFS") {
      stats = bench::RunBfsWith(bench::EngineKind::kNxCallback, store, opt);
    } else {
      stats = bench::RunSccWith(bench::EngineKind::kNxCallback, store, opt);
    }
  }
  state.counters["MTEPS"] = stats.Mteps();
  g_rows.push_back(Row{algo, p, stats.seconds});
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const uint32_t kIntervals[] = {2, 4, 6, 12, 18, 24, 36, 48};
  for (const char* algo : {"PageRank", "BFS", "SCC"}) {
    for (uint32_t p : kIntervals) {
      std::string name =
          std::string(algo) + "/P:" + std::to_string(p);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [algo, p, full](benchmark::State& st) {
                                     RunConfig(st, algo, p, full);
                                   })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 7: performance vs number of intervals "
              "(twitter-sim, elapsed seconds) ===\n\n");
  bench::Table table({"P", "PageRank", "BFS", "SCC"});
  for (uint32_t p : kIntervals) {
    std::vector<std::string> row{std::to_string(p), "-", "-", "-"};
    for (const auto& r : g_rows) {
      if (r.p != p) continue;
      size_t col = r.algo == "PageRank" ? 1 : r.algo == "BFS" ? 2 : 3;
      row[col] = bench::Fmt(r.seconds);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check (paper Fig. 7): PageRank is flat across P; targeted "
      "queries (BFS/SCC) degrade at very small P where activity cannot skip "
      "sub-shards; P = 12..48 are all good choices.\n");
  return 0;
}
