// Prefetch pipeline benchmark: stream-mode PageRank on a throttled Env,
// sweeping the read-ahead depth. Depth 0 is the fully synchronous
// pre-pipeline behavior; depth >= 1 overlaps disk reads with computation,
// so wall-clock should drop towards max(io_time, compute_time) and the
// reported io_wait should collapse towards the unhidden remainder.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct DepthResult {
  int requested_depth;
  RunStats stats;
};

// Budget that forces stream mode while leaving room to fund `extra` window
// slots beyond the built-in double-buffer allowance. The sub-shard
// leftover is capped below the total shard bytes so the strategy never
// upgrades the run to fully-cached — this bench measures streaming.
uint64_t StreamBudget(const GraphStore& store, int extra_slots) {
  const uint64_t slot = PrefetchSlotBytes(store.manifest(), sizeof(double),
                                          EdgeDirection::kForward);
  const uint64_t total = store.TotalSubShardBytes(false);
  const uint64_t leftover =
      std::min<uint64_t>(extra_slots * slot + 1024, total - 1);
  return 2 * store.num_vertices() * sizeof(double) +  // ping-pong state
         store.num_vertices() * 4 +                   // out-degrees
         leftover;                                    // funded window slots
}

DepthResult RunAtDepth(std::shared_ptr<GraphStore> store, int depth,
                       int iterations,
                       IoBackend backend = IoBackend::kBuffered) {
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kSinglePhase;  // stream-mode Phase A
  opt.memory_budget_bytes = StreamBudget(*store, depth > 0 ? depth - 1 : 0);
  opt.max_iterations = iterations;
  opt.num_threads = 3;
  opt.prefetch_depth = depth;
  opt.io_threads = 1;  // one reader keeps the modelled disk sequential
  opt.io_backend = backend;
  Engine<PageRankProgram> engine(store, program, opt);
  auto stats = engine.Run();
  NX_CHECK(stats.ok()) << stats.status().ToString();
  return {depth, *stats};
}

void BM_PrefetchDepth(benchmark::State& state) {
  auto store = bench::GetStore("live-journal-sim", 32, false);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok());
  for (auto _ : state) {
    auto r = RunAtDepth(*throttled, static_cast<int>(state.range(0)), 3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PrefetchDepth)->Arg(0)->Arg(2)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Prefetch pipeline: stream-mode PageRank on a throttled SSD "
      "Env (live-journal-sim, P=32, 3 compute threads, 1 I/O thread) "
      "===\n\n");
  auto store = bench::GetStore("live-journal-sim", 32, full);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok()) << throttled.status().ToString();

  const int iterations = full ? 10 : 5;
  bench::Table table({"Depth (req)", "Depth (eff)", "Wall (s)", "I/O wait (s)",
                      "Phase A (s)", "MTEPS", "Speedup vs sync"});
  double sync_seconds = 0;
  for (int depth : {0, 1, 2, 4}) {
    DepthResult r = RunAtDepth(*throttled, depth, iterations);
    if (depth == 0) sync_seconds = r.stats.seconds;
    table.AddRow({std::to_string(depth),
                  std::to_string(r.stats.prefetch_depth),
                  bench::Fmt(r.stats.seconds, 3),
                  bench::Fmt(r.stats.io_wait_seconds, 3),
                  bench::Fmt(r.stats.phase_a_seconds, 3),
                  bench::Fmt(r.stats.Mteps(), 1),
                  bench::Fmt(sync_seconds / r.stats.seconds, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nShape check: depth 0 pays the full read time as I/O wait; depth "
      ">= 1 hides reads behind computation, so wall-clock drops and I/O "
      "wait collapses towards the unhidden remainder.\n");

  // ---- backend sweep on the REAL filesystem ------------------------------
  // The throttled Env above models the device, so backends cannot change
  // it; this sweep runs the same stream-mode PageRank against the real
  // disk, where buffered reads come out of the (warm) page cache while
  // direct reads face the device every time. That contrast is the point:
  // direct numbers show the true device cost the page cache was hiding,
  // and the depth-0 vs depth-2 delta becomes a real device-overlap
  // measurement instead of a kernel-readahead artifact.
  std::printf(
      "\n=== Backend sweep: same workload on the real filesystem "
      "(page cache warm for buffered/uring; direct bypasses it) ===\n\n");
  bench::Table backends({"Backend (req)", "Backend (eff)", "Depth",
                         "Wall (s)", "I/O wait (s)", "MTEPS"});
  for (IoBackend backend :
       {IoBackend::kBuffered, IoBackend::kDirect, IoBackend::kUring}) {
    for (int depth : {0, 2}) {
      DepthResult r = RunAtDepth(store, depth, iterations, backend);
      backends.AddRow({IoBackendName(backend), r.stats.io_backend,
                       std::to_string(depth), bench::Fmt(r.stats.seconds, 3),
                       bench::Fmt(r.stats.io_wait_seconds, 3),
                       bench::Fmt(r.stats.Mteps(), 1)});
    }
  }
  backends.Print();
  return 0;
}
