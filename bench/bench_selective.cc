// Selective scheduling benchmark: per-blob source summaries (manifest v3)
// vs summary-blind planning on frontier algorithms (BFS / SSSP / WCC).
//
// The graph is a long inter-interval chain buried in random background
// edges: every (i, j) sub-shard is non-empty, but once the wavefront
// passes, each active row holds exactly one vertex that still matters. A
// summary-blind run re-reads the whole row every iteration; the summary
// AND-test drops everything but the one blob the frontier can reach. The
// per-iteration (processed, skipped) trajectory from the selective run is
// the exact planning ledger: processed + skipped is what the blind run
// reads, so the tail-iteration reduction factor needs no counter support
// from the off run.
//
// --smoke: small graph, assert >= 10x tail-iteration read reduction and
// bit-identical values for all three algorithms, exit non-zero otherwise
// (the CI gate). With --json the summary table is also written as
// BENCH_selective.json.
#include "bench/bench_common.h"
#include "src/util/byte_size.h"

namespace nxgraph {
namespace {

// Chain head of each interval linked head-to-head; all other vertices get
// random background out-edges that never target a chain head, so the chain
// stays the only live frontier once the background converges.
EdgeList ChainGraph(uint32_t p, uint32_t interval_size, bool weighted) {
  const uint64_t n = static_cast<uint64_t>(p) * interval_size;
  EdgeList edges;
  auto add = [&](VertexIndex src, VertexIndex dst, float w) {
    if (weighted) {
      edges.AddWeighted(src, dst, w);
    } else {
      edges.Add(src, dst);
    }
  };
  for (uint32_t i = 0; i + 1 < p; ++i) {
    add(i * interval_size, (i + 1) * interval_size, 1.0f + 0.25f * i);
  }
  Xoshiro256 rng(42);
  for (uint64_t v = 0; v < n; ++v) {
    if (v % interval_size == 0) continue;
    for (int e = 0; e < 8; ++e) {
      uint64_t dst = rng.NextBounded(n);
      if (dst % interval_size == 0) ++dst;
      if (dst >= n) dst = 1;
      add(v, dst, 0.5f + 0.1f * e);
    }
  }
  return edges;
}

std::shared_ptr<GraphStore> GetChainStore(uint32_t p, uint32_t interval_size,
                                          bool weighted) {
  const std::string dir = "/tmp/nxgraph_bench/selective_p" +
                          std::to_string(p) + "_s" +
                          std::to_string(interval_size) +
                          (weighted ? "_w" : "");
  if (Env::Default()->FileExists(dir + "/" + kManifestFileName)) {
    auto store = OpenGraphStore(dir);
    if (store.ok() && (*store)->manifest().has_summaries()) return *store;
  }
  BuildOptions options;
  options.num_intervals = p;
  options.build_transpose = true;
  options.summary = SummaryParams{};  // summaries on regardless of env
  auto store = BuildGraphStore(ChainGraph(p, interval_size, weighted), dir,
                               options);
  NX_CHECK(store.ok()) << store.status().ToString();
  return *store;
}

RunOptions StreamOptions(bool selective, EdgeDirection direction) {
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;  // every blob is out-of-core
  opt.direction = direction;
  opt.num_threads = 3;
  opt.selective_scheduling = selective;
  return opt;
}

struct AlgoResult {
  RunStats on;
  RunStats off;
  bool parity = false;
  double tail_reduction = 0;  // (processed + skipped) / processed, tail 25%
};

// Tail window: the last quarter of the iterations that planned any stream
// I/O — where the frontier has collapsed and skipping pays the most.
double TailReduction(const RunStats& on) {
  const auto& proc = on.iteration_subshards_processed;
  const auto& skip = on.iteration_subshards_skipped;
  size_t active = 0;
  for (size_t k = 0; k < proc.size(); ++k) {
    if (proc[k] + skip[k] > 0) active = k + 1;
  }
  if (active == 0) return 0;
  const size_t begin = active - std::max<size_t>(active / 4, 1);
  uint64_t read = 0, planned = 0;
  for (size_t k = begin; k < active; ++k) {
    read += proc[k];
    planned += proc[k] + skip[k];
  }
  return read > 0 ? static_cast<double>(planned) / static_cast<double>(read)
                  : 0;
}

template <typename Program>
AlgoResult RunBoth(std::shared_ptr<GraphStore> store, Program program,
                   EdgeDirection direction) {
  AlgoResult r;
  Engine<Program> off(store, program, StreamOptions(false, direction));
  auto off_stats = off.Run();
  NX_CHECK(off_stats.ok()) << off_stats.status().ToString();
  r.off = *off_stats;

  Engine<Program> on(store, program, StreamOptions(true, direction));
  auto on_stats = on.Run();
  NX_CHECK(on_stats.ok()) << on_stats.status().ToString();
  r.on = *on_stats;

  r.parity = on.values() == off.values();
  r.tail_reduction = TailReduction(r.on);
  return r;
}

bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool smoke = SmokeMode(argc, argv);
  const bool full = bench::FullMode(argc, argv);
  const bool json = bench::JsonMode(argc, argv);

  const uint32_t p = smoke ? 16 : 32;
  const uint32_t interval_size = smoke ? 128 : (full ? 2048 : 512);

  auto store = GetChainStore(p, interval_size, /*weighted=*/false);
  auto wstore = GetChainStore(p, interval_size, /*weighted=*/true);

  std::printf(
      "\n=== Selective scheduling: summary-aware vs blind planning "
      "(chain graph, n=%llu, m=%llu, P=%u, DPU stream) ===\n\n",
      static_cast<unsigned long long>(store->num_vertices()),
      static_cast<unsigned long long>(store->num_edges()), p);
  std::printf("summary metadata: %s across both directions\n\n",
              FormatByteSize(store->manifest().TotalSummaryBytes()).c_str());

  BfsProgram bfs;
  bfs.root = 0;
  SsspProgram sssp;
  sssp.root = 0;
  AlgoResult results[3];
  results[0] = RunBoth(store, bfs, EdgeDirection::kForward);
  results[1] = RunBoth(wstore, sssp, EdgeDirection::kForward);
  results[2] = RunBoth(store, WccProgram{}, EdgeDirection::kBoth);
  const char* names[3] = {"BFS", "SSSP", "WCC"};

  bench::Table table({"Algo", "Iter", "Blobs read", "Blobs skipped",
                      "Tail reduction", "Bytes read (on)", "Bytes read (off)",
                      "Parity"});
  for (int a = 0; a < 3; ++a) {
    const AlgoResult& r = results[a];
    table.AddRow({names[a], std::to_string(r.on.iterations),
                  std::to_string(r.on.subshards_processed),
                  std::to_string(r.on.subshards_skipped),
                  bench::Fmt(r.tail_reduction, 1) + "x",
                  FormatByteSize(r.on.bytes_read),
                  FormatByteSize(r.off.bytes_read),
                  r.parity ? "ok" : "MISMATCH"});
  }
  table.Print();
  if (json) table.WriteJson("selective");

  if (!smoke) {
    // Per-iteration trajectory: processed collapses towards the frontier
    // size while processed + skipped stays at the blind run's read count.
    std::printf("\n--- BFS per-iteration planning (selective run) ---\n");
    bench::Table traj({"Iteration", "Blobs read", "Blobs skipped"});
    const auto& proc = results[0].on.iteration_subshards_processed;
    const auto& skip = results[0].on.iteration_subshards_skipped;
    for (size_t k = 0; k < proc.size(); ++k) {
      traj.AddRow({std::to_string(k), std::to_string(proc[k]),
                   std::to_string(skip[k])});
    }
    traj.Print();
  }

  bool ok = true;
  for (int a = 0; a < 3; ++a) {
    if (!results[a].parity) {
      std::fprintf(stderr, "FAIL: %s values differ with summaries on\n",
                   names[a]);
      ok = false;
    }
    if (results[a].tail_reduction < 10.0) {
      std::fprintf(stderr,
                   "FAIL: %s tail-iteration read reduction %.1fx < 10x\n",
                   names[a], results[a].tail_reduction);
      ok = false;
    }
  }
  NX_CHECK(ok) << "selective scheduling gate failed";
  if (smoke) {
    std::printf(
        "\nsmoke OK: tail reductions BFS %.1fx, SSSP %.1fx, WCC %.1fx; "
        "values bit-identical\n",
        results[0].tail_reduction, results[1].tail_reduction,
        results[2].tail_reduction);
  }
  return 0;
}
