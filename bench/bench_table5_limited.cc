// Table V (Exp 8): 1 iteration of PageRank under limited resources — a
// small memory budget on modelled SSD and HDD devices (ThrottledEnv; see
// DESIGN.md §3). Engines: NXgraph (auto strategy), GridGraph/TurboGraph-
// like, and X-Stream-like. VENUS is unavailable (the paper could not
// obtain it either and compared against its published numbers).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string device;
  std::string engine;
  double seconds;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);

  // Build the shared store once on the unthrottled Env, then re-open it
  // through each device model so only the measured runs pay device costs.
  auto base_store = bench::GetStore("twitter-sim", 16, full);
  const std::string dir = base_store->dir();
  // The paper's Table V setting: Twitter's vertex state fits the 8 GB
  // machine (SPU applies) but the edges do not all fit, so sub-shards
  // stream from disk. Budget = full vertex state + half the shard bytes.
  const uint64_t budget = 2 * base_store->num_vertices() * sizeof(double) +
                          base_store->num_vertices() * 4 +
                          base_store->TotalSubShardBytes(false) / 2;

  struct Device {
    const char* name;
    DeviceProfile profile;
  };
  const Device devices[] = {
      {"SSD", DeviceProfile::Ssd()},
      {"HDD", DeviceProfile::Hdd()},
  };
  const bench::EngineKind engines[] = {bench::EngineKind::kNxCallback,
                                       bench::EngineKind::kTurboGraphLike,
                                       bench::EngineKind::kXStreamLike};

  // Keep the throttled envs alive for the duration of the runs.
  static std::vector<std::unique_ptr<Env>> throttled_envs;

  for (const Device& device : devices) {
    throttled_envs.push_back(NewThrottledEnv(Env::Default(), device.profile));
    Env* env = throttled_envs.back().get();
    for (auto kind : engines) {
      std::string name =
          std::string(device.name) + "/" + bench::EngineName(kind);
      const char* device_name = device.name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            auto store = OpenGraphStore(dir, env);
            NX_CHECK(store.ok()) << store.status().ToString();
            RunOptions opt;
            opt.num_threads = 4;
            opt.memory_budget_bytes = budget;
            opt.scratch_dir = dir + "/run_" + device_name;
            RunStats stats;
            for (auto _ : st) {
              stats = bench::RunPageRankWith(kind, *store, opt, 1);
            }
            st.counters["GB_read"] =
                static_cast<double>(stats.bytes_read) / 1e9;
            g_rows.push_back(
                Row{device_name, bench::EngineName(kind), stats.seconds});
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Table V: 1 iteration of PageRank, limited resources "
              "(twitter-sim, budget = vertex state + half the sub-shards, "
              "modelled devices) ===\n\n");
  bench::Table table({"Device", "System", "Time(s)", "Slowdown vs NXgraph"});
  for (const Device& device : devices) {
    double nx_seconds = 0;
    for (const auto& r : g_rows) {
      if (r.device == device.name &&
          r.engine == bench::EngineName(bench::EngineKind::kNxCallback)) {
        nx_seconds = r.seconds;
      }
    }
    for (const auto& r : g_rows) {
      if (r.device != device.name) continue;
      table.AddRow({r.device, r.engine, bench::Fmt(r.seconds),
                    bench::Fmt(nx_seconds > 0 ? r.seconds / nx_seconds : 0)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper Table V context (measured on the authors' hardware): NXgraph "
      "7.13s vs GridGraph 26.91s and X-Stream 88.95s on SSD; NXgraph 12.55s "
      "vs VENUS 95.48s, GridGraph 24.11s, X-Stream 81.70s on HDD.\n"
      "Shape check: NXgraph fastest on both devices; every system slows on "
      "HDD, X-Stream most (heaviest update traffic).\n");
  return 0;
}
