// Table IV (Exp 1): sub-shard ordering and parallelism model.
//   "src-sorted, coarse-grained"  -> GraphChi-like discipline
//   "dst-sorted, fine-grained"    -> NXgraph DSSS engine
// Task: 10 iterations of PageRank on the three real-world stand-ins.
// Both engines run fully in memory so the measured delta isolates sort
// order + parallel model (write conflicts vs destination ownership).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string model;
  std::string dataset;
  double seconds;
};
std::vector<Row> g_rows;

void RunConfig(benchmark::State& state, const std::string& dataset,
               bool dst_sorted, bool full) {
  auto store = bench::GetStore(dataset, 16, full, /*transpose=*/false);
  RunOptions opt;
  opt.num_threads = 4;
  opt.memory_budget_bytes = 0;  // both models fully in-memory
  RunStats stats;
  for (auto _ : state) {
    stats = bench::RunPageRankWith(dst_sorted
                                       ? bench::EngineKind::kNxCallback
                                       : bench::EngineKind::kGraphChiLike,
                                   store, opt, 10);
  }
  state.counters["MTEPS"] = stats.Mteps();
  g_rows.push_back(Row{dst_sorted ? "dst-sorted, fine-grained"
                                  : "src-sorted, coarse-grained",
                       dataset, stats.seconds});
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const char* datasets[] = {"live-journal-sim", "twitter-sim",
                            "yahoo-web-sim"};
  for (bool dst_sorted : {false, true}) {
    for (const char* dataset : datasets) {
      std::string name = std::string(dst_sorted ? "DstSortedFine"
                                                : "SrcSortedCoarse") +
                         "/" + dataset;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, dst_sorted, full](benchmark::State& st) {
            RunConfig(st, dataset, dst_sorted, full);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Table IV: performance with different sub-shard model "
              "(10 iterations of PageRank, elapsed seconds) ===\n\n");
  bench::Table table({"Model", "Live-journal", "Twitter", "Yahoo-web"});
  for (const char* model :
       {"src-sorted, coarse-grained", "dst-sorted, fine-grained"}) {
    std::vector<std::string> row{model, "-", "-", "-"};
    for (const auto& r : g_rows) {
      if (r.model != model) continue;
      size_t col = r.dataset == "live-journal-sim" ? 1
                   : r.dataset == "twitter-sim"    ? 2
                                                   : 3;
      row[col] = bench::Fmt(r.seconds);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check (paper Table IV): dst-sorted fine-grained wins on every "
      "graph (paper: 1.44x on Live-journal, 3.5x on Twitter, 1.34x on "
      "Yahoo-web).\n");
  return 0;
}
