// Table VI (Exp 9): 1 iteration of PageRank in the best configuration
// (unlimited budget => SPU, all threads). All in-repo engines run; the
// paper's cross-system rows (PowerGraph cluster, MMAP) are printed as
// cited context.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string engine;
  double seconds;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  auto store = bench::GetStore("twitter-sim", 16, full);

  const bench::EngineKind engines[] = {
      bench::EngineKind::kNxCallback, bench::EngineKind::kNxLock,
      bench::EngineKind::kGraphChiLike, bench::EngineKind::kTurboGraphLike,
      bench::EngineKind::kXStreamLike};
  for (auto kind : engines) {
    benchmark::RegisterBenchmark(
        bench::EngineName(kind),
        [=](benchmark::State& st) {
          RunOptions opt;
          opt.num_threads = 4;
          RunStats stats;
          for (auto _ : st) {
            stats = bench::RunPageRankWith(kind, store, opt, 1);
          }
          st.counters["MTEPS"] = stats.Mteps();
          g_rows.push_back(Row{bench::EngineName(kind), stats.seconds});
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Table VI: 1 iteration of PageRank, best case "
              "(twitter-sim, unlimited memory, 4 threads) ===\n\n");
  double nx_seconds = 0;
  for (const auto& r : g_rows) {
    if (r.engine == bench::EngineName(bench::EngineKind::kNxCallback)) {
      nx_seconds = r.seconds;
    }
  }
  bench::Table table({"System", "Time(s)", "Speedup of NXgraph"});
  for (const auto& r : g_rows) {
    table.AddRow({r.engine, bench::Fmt(r.seconds, 3),
                  bench::Fmt(nx_seconds > 0 ? r.seconds / nx_seconds : 0)});
  }
  table.Print();
  std::printf(
      "\nPaper Table VI context (authors' hardware, full Twitter): NXgraph "
      "2.05s; X-Stream 23.25s (11.6x); GridGraph 24.11s (12.0x); MMAP 13.10s "
      "(6.5x); PowerGraph (64-node cluster) 3.60s (1.8x).\n"
      "Shape check: NXgraph fastest among single-machine engines; "
      "the distributed PowerGraph row is cited context only (out of scope, "
      "DESIGN.md §7).\n");
  return 0;
}
