// Closed-loop serving benchmark: N client threads issue a mixed query
// stream (full BFS, 2-hop neighborhoods, SSSP, budget-capped probes, and a
// periodic PageRank analytics job) against one long-lived GraphServer and
// wait for each answer before sending the next. Reports throughput (QPS),
// latency percentiles (p50/p95/p99), and shared-cache hit rate per
// scenario; `--json` (or `--smoke`) writes BENCH_serving.json.
//
//   ./bench_serving            # default scenarios
//   ./bench_serving --full     # larger graph, longer streams
//   ./bench_serving --json     # also write BENCH_serving.json
//   ./bench_serving --smoke    # tiny CI gate: asserts sane serving behavior
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/algos/programs.h"
#include "src/server/graph_server.h"

namespace nxgraph {
namespace {

bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

// GetStore with an explicit divisor so --smoke can shrink the graph
// (bench::GetStore hardwires the dataset's default divisor). Same cache
// scheme, "serving_" prefix.
std::shared_ptr<GraphStore> GetServingStore(const std::string& dataset,
                                            uint32_t p, uint64_t divisor) {
  const std::string dir = "/tmp/nxgraph_bench/serving_" + dataset + "_p" +
                          std::to_string(p) + "_d" + std::to_string(divisor);
  if (Env::Default()->FileExists(dir + "/" + kManifestFileName)) {
    auto store = OpenGraphStore(dir);
    if (store.ok()) return *store;
  }
  auto edges = MakeDataset(dataset, divisor);
  NX_CHECK(edges.ok()) << edges.status().ToString();
  BuildOptions options;
  options.num_intervals = p;
  options.build_transpose = true;
  auto store = BuildGraphStore(*edges, dir, options);
  NX_CHECK(store.ok()) << store.status().ToString();
  return *store;
}

struct Scenario {
  std::string name;
  int clients;
  int workers;
  uint64_t cache_budget;       // bytes; UINT64_MAX = everything resident
  int queries_per_client;
  uint64_t probe_budget;       // io_byte_budget for every 8th query
  /// Fraction of the stream each client cancels mid-flight (0 = none).
  /// Cancelled queries measure cancel-to-release latency: Cancel(id) to
  /// the future settling (pins released, worker freed).
  double cancel_fraction = 0;
};

/// Cancel-to-release samples across all clients of one scenario.
struct CancelLatencies {
  std::mutex mu;
  std::vector<double> ms;
  void Add(double v) {
    std::lock_guard<std::mutex> lock(mu);
    ms.push_back(v);
  }
};

struct ScenarioResult {
  GraphServer::Stats stats;
  double wall_seconds = 0;
  double qps = 0;  // completed / wall, measured around the run only
  uint64_t cancels_issued = 0;
  double p95_cancel_ms = 0;  // 0 when the scenario cancels nothing
};

// One client's closed loop: submit, wait, repeat. Query k of the stream is
// BFS (k%4==0), a 2-hop neighborhood (1), SSSP (2), or a budget-capped BFS
// probe (3); client 0 additionally interleaves a 3-iteration PageRank job
// every 16 queries, so analytics and point lookups share the cache.
void ClientLoop(GraphServer& server, int client_id, const Scenario& sc,
                CancelLatencies* cancels) {
  const uint32_t num_vertices =
      static_cast<uint32_t>(server.store().num_vertices());
  uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(client_id + 1);
  // Every cancel_period-th query is cancelled mid-flight (period 5 at the
  // 20% default fraction).
  const int cancel_period =
      sc.cancel_fraction > 0 ? static_cast<int>(1.0 / sc.cancel_fraction) : 0;
  for (int k = 0; k < sc.queries_per_client; ++k) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    PointQuery q;
    q.root = static_cast<VertexId>((rng >> 33) % num_vertices);
    switch (k % 4) {
      case 0:
        q.kind = QueryKind::kBfs;
        break;
      case 1:
        q.kind = QueryKind::kKHop;
        q.limits.max_hops = 2;
        break;
      case 2:
        q.kind = QueryKind::kSssp;
        q.limits.max_hops = 8;  // round cap; unit weights on bench graphs
        break;
      default:
        q.kind = QueryKind::kBfs;
        q.limits.io_byte_budget = sc.probe_budget;
        break;
    }
    auto f = server.Submit(q);
    if (cancel_period > 0 && k % cancel_period == cancel_period - 1) {
      // Let the query get going, then cancel and time the release: from
      // Cancel(id) to the future settling. Queries that finish before the
      // cancel lands contribute (correctly) near-zero samples.
      std::this_thread::sleep_for(std::chrono::microseconds((rng >> 40) % 500));
      const auto t0 = std::chrono::steady_clock::now();
      server.Cancel(f.id());
      f.Wait();
      cancels->Add(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
      continue;
    }
    f.Wait();
    if (client_id == 0 && k % 16 == 15) {
      PageRankProgram pr;
      pr.num_vertices = server.store().num_vertices();
      BatchQuery spec;
      spec.max_iterations = 3;
      auto bf = server.SubmitBatch(pr, spec);
      bf.Wait();
    }
  }
}

ScenarioResult RunScenario(const std::string& dir, const Scenario& sc) {
  GraphServer::Options opts;
  opts.cache_budget_bytes = sc.cache_budget;
  opts.num_workers = sc.workers;
  opts.io_threads = 2;
  opts.prefetch_depth = 2;
  auto server = GraphServer::Open(Env::Default(), dir, opts);
  NX_CHECK(server.ok()) << server.status().ToString();

  CancelLatencies cancels;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(sc.clients);
  for (int c = 0; c < sc.clients; ++c) {
    clients.emplace_back([&, c] { ClientLoop(**server, c, sc, &cancels); });
  }
  for (auto& t : clients) t.join();

  ScenarioResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.stats = (*server)->stats();
  r.qps = r.wall_seconds > 0
              ? static_cast<double>(r.stats.completed) / r.wall_seconds
              : 0;
  r.cancels_issued = cancels.ms.size();
  if (!cancels.ms.empty()) {
    std::sort(cancels.ms.begin(), cancels.ms.end());
    const size_t idx = static_cast<size_t>(0.95 * (cancels.ms.size() - 1));
    r.p95_cancel_ms = cancels.ms[idx];
  }
  NX_CHECK((*server)->cache()->pinned_entries() == 0)
      << "scenario '" << sc.name << "' leaked cache pins";
  return r;
}

// Cold-load time of the largest sub-shard in row 0, through a fresh
// cache — the natural unit for the cancel-to-release gate, since a
// cancelled query releases at the next sub-shard boundary and so may have
// to ride out one in-flight load first.
double MeasureSubShardLoadMs(const std::string& dir) {
  auto store = OpenGraphStore(dir);
  NX_CHECK(store.ok()) << store.status().ToString();
  const Manifest& m = (*store)->manifest();
  uint32_t widest = 0;
  for (uint32_t j = 1; j < m.num_intervals; ++j) {
    if (m.subshard(0, j).size > m.subshard(0, widest).size) widest = j;
  }
  SubShardCache cache(*store, UINT64_MAX, /*evictable=*/true);
  const auto t0 = std::chrono::steady_clock::now();
  NX_CHECK(cache.Get(0, widest).ok());
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string CacheLabel(uint64_t budget) {
  if (budget == UINT64_MAX) return "unlimited";
  return bench::Fmt(static_cast<double>(budget) / (1024.0 * 1024.0), 1) + " MiB";
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool smoke = SmokeMode(argc, argv);
  const bool full = bench::FullMode(argc, argv);
  const bool json = bench::JsonMode(argc, argv) || smoke;

  const uint64_t divisor =
      smoke ? 2048 : bench::Divisor("live-journal-sim", full);
  const uint32_t p = smoke ? 8 : 32;
  auto store = GetServingStore("live-journal-sim", p, divisor);
  const auto& m = store->manifest();
  const uint64_t store_bytes =
      m.TotalDecodedSubShardBytes(false) + m.TotalDecodedSubShardBytes(true);
  const std::string dir = store->dir();
  store.reset();  // the server owns its own handle

  std::printf(
      "=== Closed-loop serving: mixed BFS / 2-hop / SSSP / capped probes + "
      "PageRank (live-journal-sim/%llu, P=%u, %.1f MiB decoded) ===\n\n",
      static_cast<unsigned long long>(divisor), p,
      static_cast<double>(store_bytes) / (1024.0 * 1024.0));

  const double subshard_load_ms = MeasureSubShardLoadMs(dir);
  std::printf("one cold sub-shard load: %.3f ms\n\n", subshard_load_ms);

  const int qpc = smoke ? 8 : (full ? 96 : 32);
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back(
        {"smoke", 4, 2, UINT64_MAX, qpc, store_bytes / 8 + 1});
    scenarios.push_back({"smoke, 20% cancels", 4, 2, UINT64_MAX,
                         qpc * 4, store_bytes / 8 + 1, 0.2});
  } else {
    scenarios.push_back({"serial", 1, 1, UINT64_MAX, qpc, store_bytes / 8 + 1});
    scenarios.push_back(
        {"8 clients, warm cache", 8, 4, UINT64_MAX, qpc, store_bytes / 8 + 1});
    scenarios.push_back({"8 clients, cache = store/4", 8, 4,
                         store_bytes / 4 + 1, qpc, store_bytes / 8 + 1});
    scenarios.push_back({"8 clients, 20% cancels", 8, 4, store_bytes / 4 + 1,
                         qpc, store_bytes / 8 + 1, 0.2});
  }

  bench::Table table({"Scenario", "Clients", "Workers", "Cache", "Completed",
                      "Truncated", "Cancelled", "Wall (s)", "QPS", "p50 (ms)",
                      "p95 (ms)", "p99 (ms)", "p95 cancel (ms)",
                      "Cache hit rate"});
  std::vector<ScenarioResult> results;
  for (const Scenario& sc : scenarios) {
    ScenarioResult r = RunScenario(dir, sc);
    results.push_back(r);
    table.AddRow({sc.name, std::to_string(sc.clients),
                  std::to_string(sc.workers), CacheLabel(sc.cache_budget),
                  std::to_string(r.stats.completed),
                  std::to_string(r.stats.truncated),
                  std::to_string(r.stats.cancelled), bench::Fmt(r.wall_seconds, 3),
                  bench::Fmt(r.qps, 1), bench::Fmt(r.stats.p50_ms, 2),
                  bench::Fmt(r.stats.p95_ms, 2), bench::Fmt(r.stats.p99_ms, 2),
                  bench::Fmt(r.p95_cancel_ms, 2),
                  bench::Fmt(r.stats.cache_hit_rate, 3)});
  }
  table.Print();
  if (json) table.WriteJson("serving");

  if (smoke) {
    // CI gate: every submitted query must finish (no failures, no rejects
    // at this queue depth), capped probes must truncate rather than hang,
    // and the shared cache must actually be shared (hits > 0).
    const ScenarioResult& r = results[0];
    NX_CHECK(r.stats.failed == 0) << r.stats.failed << " queries failed";
    NX_CHECK(r.stats.rejected == 0) << r.stats.rejected << " rejected";
    NX_CHECK(r.stats.completed == r.stats.submitted)
        << r.stats.completed << " of " << r.stats.submitted << " completed";
    NX_CHECK(r.stats.truncated > 0) << "capped probes never truncated";
    NX_CHECK(r.stats.cache.hits > 0) << "shared cache saw no hits";
    NX_CHECK(r.stats.p50_ms <= r.stats.p99_ms) << "percentiles out of order";

    // Cancellation gate: mid-flight cancels release their worker and pins
    // within one sub-shard load (a cancelled query's longest non-
    // interruptible wait), with a floor for scheduler jitter on tiny
    // smoke stores. Every query still terminates (completed or
    // cancelled), and nothing errors out.
    const ScenarioResult& c = results[1];
    NX_CHECK(c.cancels_issued > 0) << "cancel scenario issued no cancels";
    NX_CHECK(c.stats.failed == 0) << c.stats.failed << " queries failed";
    NX_CHECK(c.stats.completed + c.stats.cancelled == c.stats.submitted)
        << "queries neither completed nor cancelled";
    const double gate_ms = subshard_load_ms > 50.0 ? subshard_load_ms : 50.0;
    NX_CHECK(c.p95_cancel_ms <= gate_ms)
        << "p95 cancel-to-release " << c.p95_cancel_ms << " ms exceeds "
        << gate_ms << " ms (one sub-shard load, 50 ms floor)";
    std::printf(
        "\nsmoke OK: %llu queries served, hit rate %.3f; %llu cancels, "
        "p95 cancel-to-release %.2f ms (gate %.2f ms)\n",
        static_cast<unsigned long long>(r.stats.completed),
        r.stats.cache_hit_rate,
        static_cast<unsigned long long>(c.cancels_issued), c.p95_cancel_ms,
        gate_ms);
  }
  return 0;
}
