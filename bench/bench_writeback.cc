// Write-behind pipeline benchmark: forced-DPU PageRank on a throttled SSD
// Env, sweeping the writeback budget. DPU spends every iteration in Phases
// B and C, whose hub payloads and interval write-backs used to block
// compute-pool tasks on device write latency — most visibly when compute
// threads are scarce (one worker here, the paper's low-thread rows).
// Budget 0 is that fully synchronous pre-writeback behavior; a funded
// budget moves the writes to the dedicated writer pool, so wall-clock
// should drop and the reported write_wait should collapse towards the
// unhidden remainder (the end-of-phase Drain barriers).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/util/byte_size.h"

namespace nxgraph {
namespace {

struct BudgetResult {
  uint64_t budget;
  RunStats stats;
};

BudgetResult RunAtBudget(std::shared_ptr<GraphStore> store, uint64_t budget,
                         int iterations,
                         IoBackend backend = IoBackend::kBuffered) {
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;  // all work in Phases B/C
  opt.max_iterations = iterations;
  opt.num_threads = 1;
  opt.io_threads = 2;
  opt.writeback_threads = 4;  // modeled device: parallel sleeps ~ queue depth
  opt.writeback_buffer_bytes = budget;
  opt.io_backend = backend;
  Engine<PageRankProgram> engine(store, program, opt);
  auto stats = engine.Run();
  NX_CHECK(stats.ok()) << stats.status().ToString();
  return {budget, *stats};
}

void BM_WritebackBudget(benchmark::State& state) {
  auto store = bench::GetStore("live-journal-sim", 32, false);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok());
  for (auto _ : state) {
    auto r = RunAtBudget(*throttled,
                         static_cast<uint64_t>(state.range(0)), 3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WritebackBudget)->Arg(0)->Arg(8 << 20)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Write-behind pipeline: forced-DPU PageRank on a throttled SSD "
      "Env (live-journal-sim, P=32, 1 compute thread, 2 read + 4 write I/O "
      "threads) ===\n\n");
  auto store = bench::GetStore("live-journal-sim", 32, full);
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  auto throttled = OpenGraphStore(store->dir(), env.get());
  NX_CHECK(throttled.ok()) << throttled.status().ToString();

  const int iterations = full ? 10 : 5;
  bench::Table table({"Budget", "Wall (s)", "Write wait (s)", "I/O wait (s)",
                      "Phase B (s)", "Phase C (s)", "MTEPS",
                      "Speedup vs sync"});
  double sync_seconds = 0;
  for (uint64_t budget :
       {uint64_t{0}, uint64_t{64} << 10, uint64_t{8} << 20}) {
    BudgetResult r = RunAtBudget(*throttled, budget, iterations);
    if (budget == 0) sync_seconds = r.stats.seconds;
    table.AddRow({budget == 0 ? "0 (sync)" : FormatByteSize(budget),
                  bench::Fmt(r.stats.seconds, 3),
                  bench::Fmt(r.stats.write_wait_seconds, 3),
                  bench::Fmt(r.stats.io_wait_seconds, 3),
                  bench::Fmt(r.stats.phase_b_seconds, 3),
                  bench::Fmt(r.stats.phase_c_seconds, 3),
                  bench::Fmt(r.stats.Mteps(), 1),
                  bench::Fmt(sync_seconds / r.stats.seconds, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nShape check: budget 0 pays every hub/interval write inside a "
      "compute task as write wait; a funded budget drains them on the I/O "
      "pool, so wall-clock drops and write wait collapses towards the "
      "end-of-phase Drain barriers.\n");

  // ---- backend sweep on the REAL filesystem ------------------------------
  // The throttled sweep above models the device, which backends cannot
  // change; here the same forced-DPU PageRank runs against the real disk.
  // Buffered writes land in the page cache and cost nearly nothing until
  // the iteration-boundary fdatasync; direct writes pay the device on
  // every WriteAt — so the write-behind budget (and the queue's elevator +
  // group commit) has real work to hide on the direct backend.
  std::printf(
      "\n=== Backend sweep: same workload on the real filesystem "
      "(page cache absorbs buffered/uring writes; direct pays the device) "
      "===\n\n");
  bench::Table backends({"Backend (req)", "Backend (eff)", "Budget",
                         "Wall (s)", "Write wait (s)", "MTEPS"});
  for (IoBackend backend :
       {IoBackend::kBuffered, IoBackend::kDirect, IoBackend::kUring}) {
    for (uint64_t budget : {uint64_t{0}, uint64_t{8} << 20}) {
      BudgetResult r = RunAtBudget(store, budget, iterations, backend);
      backends.AddRow({IoBackendName(backend), r.stats.io_backend,
                       budget == 0 ? "0 (sync)" : FormatByteSize(budget),
                       bench::Fmt(r.stats.seconds, 3),
                       bench::Fmt(r.stats.write_wait_seconds, 3),
                       bench::Fmt(r.stats.Mteps(), 1)});
    }
  }
  backends.Print();
  return 0;
}
