// Fig. 9 (Exp 4): 10-iteration PageRank elapsed time as the memory budget
// varies, on all three real-world stand-ins, for NXgraph (callback and
// lock schedulers, auto strategy) and the GraphChi-like / TurboGraph-like
// baselines.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string dataset;
  std::string engine;
  double budget_fraction;  // of full working set; 0 == unlimited
  double seconds;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const char* datasets[] = {"live-journal-sim", "twitter-sim",
                            "yahoo-web-sim"};
  const bench::EngineKind engines[] = {
      bench::EngineKind::kNxCallback, bench::EngineKind::kNxLock,
      bench::EngineKind::kGraphChiLike, bench::EngineKind::kTurboGraphLike};
  const double fractions[] = {0.3, 0.6, 0.0};  // 0 == unlimited

  for (const char* dataset : datasets) {
    auto store = bench::GetStore(dataset, 16, full);
    // Full working set: ping-pong vertex state + all sub-shard bytes.
    const uint64_t working_set =
        2 * store->num_vertices() * sizeof(double) +
        store->TotalSubShardBytes(false) + store->num_vertices() * 4;
    for (auto kind : engines) {
      for (double fraction : fractions) {
        const uint64_t budget =
            fraction == 0.0
                ? 0
                : static_cast<uint64_t>(fraction * working_set);
        std::string name = std::string(dataset) + "/" +
                           bench::EngineName(kind) + "/budget:" +
                           (fraction == 0.0 ? "unlimited"
                                            : bench::Fmt(fraction, 1));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              RunOptions opt;
              opt.num_threads = 4;
              opt.memory_budget_bytes = budget;
              RunStats stats;
              for (auto _ : st) {
                stats = bench::RunPageRankWith(kind, store, opt, 10);
              }
              st.counters["MTEPS"] = stats.Mteps();
              st.counters["GB_read"] =
                  static_cast<double>(stats.bytes_read) / 1e9;
              g_rows.push_back(Row{dataset, bench::EngineName(kind), fraction,
                                   stats.seconds});
            })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 9: PageRank x10 vs memory budget "
              "(elapsed seconds; budget as fraction of working set) ===\n");
  for (const char* dataset : datasets) {
    std::printf("\n-- %s --\n", dataset);
    bench::Table table({"Engine", "30%", "60%", "unlimited"});
    for (auto kind : engines) {
      std::vector<std::string> row{bench::EngineName(kind), "-", "-", "-"};
      for (const auto& r : g_rows) {
        if (r.dataset != dataset || r.engine != bench::EngineName(kind)) {
          continue;
        }
        size_t col = r.budget_fraction == 0.3   ? 1
                     : r.budget_fraction == 0.6 ? 2
                                                : 3;
        row[col] = bench::Fmt(r.seconds);
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper Fig. 9): NXgraph (either scheduler) beats both "
      "baselines at every budget; NXgraph improves as the budget grows "
      "(more resident intervals / cached sub-shards) and saturates once "
      "everything fits.\n");
  return 0;
}
