// Sub-shard format benchmark: NXS1 (raw fixed-width) vs NXS2 (delta-varint)
// on the R-MAT bench graph. Reports store size and bytes per edge, decode
// throughput over the raw-read/decode split, and out-of-core PageRank on a
// throttled-SSD Env (device model) plus the direct backend (real device) —
// with RunStats::env_bytes_read proving the byte reduction is measured at
// the Env layer, not inferred.
//
// --smoke: build a small store in both formats, assert the NXS2 store is
// >= 1.8x smaller, and exit non-zero otherwise (the CI gate).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/util/byte_size.h"
#include "src/util/varint.h"
#include "src/util/timer.h"

namespace nxgraph {
namespace {

struct FormatStore {
  std::shared_ptr<GraphStore> store;
  uint64_t shard_bytes = 0;  // subshards.nxs
};

FormatStore BuildFormatStore(SubShardFormat format, uint32_t p,
                             uint64_t divisor) {
  FormatStore fs;
  fs.store = bench::GetFormatStore("live-journal-sim", p, divisor, format);
  fs.shard_bytes = fs.store->TotalSubShardBytes(false);
  return fs;
}

// Decode seconds over the whole store via the prefetcher's raw-read /
// off-thread-decode split (ReadSubShardRowBytes + DecodeSubShardRow): the
// CPU price of the format, isolated from the disk.
double MeasureDecodeSeconds(const GraphStore& store, int reps) {
  const uint32_t p = store.num_intervals();
  std::vector<std::string> raws(p);
  for (uint32_t i = 0; i < p; ++i) {
    auto raw = store.ReadSubShardRowBytes(i, 0, p, false);
    NX_CHECK(raw.ok());
    raws[i] = std::move(*raw);
  }
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (uint32_t i = 0; i < p; ++i) {
      auto row = store.DecodeSubShardRow(i, 0, p, false, {}, raws[i]);
      NX_CHECK(row.ok());
      benchmark::DoNotOptimize(row);
    }
  }
  return timer.ElapsedSeconds() / reps;
}

// The exact varint bytes BulkGetVarint32 sees while decoding the store —
// every blob's dst-delta, count, and src-delta streams concatenated — and
// the value count, for measuring the bulk kernel without the surrounding
// reconstruction/validation work.
struct BulkStreams {
  std::string bytes;
  size_t values = 0;
};

BulkStreams ExtractBulkStreams(const GraphStore& store) {
  BulkStreams bs;
  const uint32_t p = store.num_intervals();
  for (uint32_t i = 0; i < p; ++i) {
    auto raw = store.ReadSubShardRowBytes(i, 0, p, false);
    NX_CHECK(raw.ok());
    auto row = store.DecodeSubShardRow(i, 0, p, false, {}, *raw);
    NX_CHECK(row.ok());
    for (const SubShard& ss : *row) {
      for (uint32_t g = 0; g < ss.num_dsts(); ++g) {
        PutVarint32(&bs.bytes, g == 0 ? ss.dsts[0]
                                      : ss.dsts[g] - ss.dsts[g - 1] - 1);
      }
      for (uint32_t g = 0; g < ss.num_dsts(); ++g) {
        PutVarint32(&bs.bytes, ss.offsets[g + 1] - ss.offsets[g]);
      }
      for (uint32_t g = 0; g < ss.num_dsts(); ++g) {
        for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
          PutVarint32(&bs.bytes, k == ss.offsets[g]
                                     ? ss.srcs[k]
                                     : ss.srcs[k] - ss.srcs[k - 1]);
        }
      }
      bs.values += 2 * ss.num_dsts() + ss.num_edges();
    }
  }
  return bs;
}

double MeasureBulkKernelSeconds(const BulkStreams& bs, int reps,
                                DecodePath path) {
  std::vector<uint32_t> out(bs.values);
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    const char* end =
        BulkGetVarint32(bs.bytes.data(), bs.bytes.data() + bs.bytes.size(),
                        out.data(), bs.values, path);
    NX_CHECK(end == bs.bytes.data() + bs.bytes.size());
    benchmark::DoNotOptimize(out.data());
  }
  return timer.ElapsedSeconds() / reps;
}

// MeasureDecodeSeconds under an explicit decode path (scalar reference vs
// the best SIMD path); restores the store's auto path afterwards.
double MeasureDecodeSecondsPath(const GraphStore& store, int reps,
                                SimdDecode mode) {
  store.SetSimdDecode(mode);
  const double seconds = MeasureDecodeSeconds(store, reps);
  store.SetSimdDecode(SimdDecode::kAuto);
  return seconds;
}

// Scalar-vs-SIMD decode throughput over the NXS2 store (encoded MB/s and
// edge rate). Printed in smoke mode too: the CI log shows the decode-path
// speedup on whatever hardware ran the job.
void PrintDecodePathTable(const GraphStore& s2, uint64_t shard_bytes,
                          double edges, int reps) {
  const double scalar_s =
      MeasureDecodeSecondsPath(s2, reps, SimdDecode::kForceScalar);
  const double simd_s =
      MeasureDecodeSecondsPath(s2, reps, SimdDecode::kForceSimd);
  const double mb = static_cast<double>(shard_bytes) / (1024.0 * 1024.0);
  std::printf("\n--- NXS2 decode path: scalar vs %s (whole store) ---\n",
              DecodePathName(ResolveDecodePath(SimdDecode::kForceSimd)));
  bench::Table t({"Path", "Decode (s)", "MB/s", "Edges/s (M)", "Speedup"});
  t.AddRow({"scalar", bench::Fmt(scalar_s, 3), bench::Fmt(mb / scalar_s, 1),
            bench::Fmt(edges / scalar_s / 1e6, 1), "1.00x"});
  t.AddRow({DecodePathName(ResolveDecodePath(SimdDecode::kForceSimd)),
            bench::Fmt(simd_s, 3), bench::Fmt(mb / simd_s, 1),
            bench::Fmt(edges / simd_s / 1e6, 1),
            bench::Fmt(scalar_s / simd_s) + "x"});
  t.Print();

  // The bulk kernel alone (BulkGetVarint32 over the store's concatenated
  // varint streams) — the whole-store rows above additionally carry the
  // path-independent reconstruction, CRC, and allocation work.
  const BulkStreams bs = ExtractBulkStreams(s2);
  const int kreps = 10 * reps;
  const double kscalar =
      MeasureBulkKernelSeconds(bs, kreps, DecodePath::kScalar);
  const double ksimd = MeasureBulkKernelSeconds(
      bs, kreps, ResolveDecodePath(SimdDecode::kForceSimd));
  const double smb = static_cast<double>(bs.bytes.size()) / (1024.0 * 1024.0);
  std::printf("\n--- NXS2 bulk varint kernel (%zu values, %.1f MiB) ---\n",
              bs.values, smb);
  bench::Table k({"Path", "Decode (s)", "MB/s", "Mvals/s", "Speedup"});
  k.AddRow({"scalar", bench::Fmt(kscalar, 3), bench::Fmt(smb / kscalar, 1),
            bench::Fmt(static_cast<double>(bs.values) / kscalar / 1e6, 1),
            "1.00x"});
  k.AddRow({DecodePathName(ResolveDecodePath(SimdDecode::kForceSimd)),
            bench::Fmt(ksimd, 3), bench::Fmt(smb / ksimd, 1),
            bench::Fmt(static_cast<double>(bs.values) / ksimd / 1e6, 1),
            bench::Fmt(kscalar / ksimd) + "x"});
  k.Print();
}

// Stream-mode budget mirroring bench_prefetch: state + degrees + a sliver,
// so every iteration re-reads the shard file through the prefetch pipeline.
uint64_t StreamBudget(const GraphStore& store) {
  return 2 * store.num_vertices() * sizeof(double) +
         store.num_vertices() * 4 + 64 * 1024;
}

RunStats RunStreamPageRank(std::shared_ptr<GraphStore> store, int iterations,
                           IoBackend backend = IoBackend::kBuffered) {
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kSinglePhase;
  opt.memory_budget_bytes = StreamBudget(*store);
  opt.max_iterations = iterations;
  opt.num_threads = 3;
  opt.prefetch_depth = 2;
  opt.io_threads = 1;
  opt.io_backend = backend;
  Engine<PageRankProgram> engine(store, program, opt);
  auto stats = engine.Run();
  NX_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool smoke = SmokeMode(argc, argv);
  const bool full = bench::FullMode(argc, argv);
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  // The RMAT bench graph (live-journal-sim parameters; smoke shrinks it).
  const uint64_t divisor = smoke ? 1024 : bench::Divisor("live-journal-sim", full);
  const uint32_t p = smoke ? 16 : 32;

  FormatStore s1 = BuildFormatStore(SubShardFormat::kNxs1, p, divisor);
  FormatStore s2 = BuildFormatStore(SubShardFormat::kNxs2, p, divisor);
  const double m = static_cast<double>(s1.store->num_edges());
  const double ratio = static_cast<double>(s1.shard_bytes) /
                       static_cast<double>(s2.shard_bytes);

  std::printf(
      "\n=== Sub-shard format: NXS1 vs NXS2 (RMAT live-journal-sim, "
      "n=%llu, m=%llu, P=%u, unweighted) ===\n\n",
      static_cast<unsigned long long>(s1.store->num_vertices()),
      static_cast<unsigned long long>(s1.store->num_edges()), p);
  bench::Table sizes({"Format", "Store bytes", "Bytes/edge", "vs NXS1"});
  sizes.AddRow({"NXS1", FormatByteSize(s1.shard_bytes),
                bench::Fmt(s1.shard_bytes / m), "1.00x"});
  sizes.AddRow({"NXS2", FormatByteSize(s2.shard_bytes),
                bench::Fmt(s2.shard_bytes / m), bench::Fmt(ratio) + "x"});
  sizes.Print();

  if (smoke) {
    // CI gate: the compression claim must hold on the bench graph.
    NX_CHECK(ratio >= 1.8) << "NXS2 store only " << ratio
                           << "x smaller than NXS1 (need >= 1.8x)";
    PrintDecodePathTable(*s2.store, s2.shard_bytes, m, 3);
    std::printf("\nsmoke OK: NXS2 store %.2fx smaller than NXS1\n", ratio);
    return 0;
  }

  // ---- decode cost (pure CPU, shard file pre-read) -----------------------
  const int reps = full ? 10 : 3;
  const double dec1 = MeasureDecodeSeconds(*s1.store, reps);
  const double dec2 = MeasureDecodeSeconds(*s2.store, reps);
  std::printf("\n--- Decode cost (whole store, raw bytes pre-read) ---\n");
  bench::Table decode({"Format", "Decode (s)", "Edges/s (M)"});
  decode.AddRow({"NXS1", bench::Fmt(dec1, 3), bench::Fmt(m / dec1 / 1e6, 1)});
  decode.AddRow({"NXS2", bench::Fmt(dec2, 3), bench::Fmt(m / dec2 / 1e6, 1)});
  decode.Print();
  PrintDecodePathTable(*s2.store, s2.shard_bytes, m, reps);

  // ---- throttled-SSD stream PageRank (device model) ----------------------
  const int iterations = full ? 10 : 5;
  auto env = NewThrottledEnv(Env::Default(), DeviceProfile::Ssd());
  std::printf(
      "\n--- Stream-mode PageRank, throttled SSD model (%d iterations) "
      "---\n",
      iterations);
  bench::Table throttled({"Format", "Wall (s)", "I/O wait (s)",
                          "Env bytes read", "Bytes read/iter", "MTEPS"});
  for (const auto* fs : {&s1, &s2}) {
    auto reopened = OpenGraphStore(fs->store->dir(), env.get());
    NX_CHECK(reopened.ok());
    RunStats r = RunStreamPageRank(*reopened, iterations);
    throttled.AddRow(
        {fs == &s1 ? "NXS1" : "NXS2", bench::Fmt(r.seconds, 3),
         bench::Fmt(r.io_wait_seconds, 3), FormatByteSize(r.env_bytes_read),
         FormatByteSize(r.env_bytes_read / iterations),
         bench::Fmt(r.Mteps(), 1)});
  }
  throttled.Print();

  // ---- direct backend (real device, page cache bypassed) -----------------
  std::printf("\n--- Stream-mode PageRank, direct I/O backend ---\n");
  bench::Table direct({"Format", "Backend (eff)", "Wall (s)", "I/O wait (s)",
                       "Env bytes read", "MTEPS"});
  for (const auto* fs : {&s1, &s2}) {
    RunStats r = RunStreamPageRank(fs->store, iterations, IoBackend::kDirect);
    direct.AddRow({fs == &s1 ? "NXS1" : "NXS2", r.io_backend,
                   bench::Fmt(r.seconds, 3), bench::Fmt(r.io_wait_seconds, 3),
                   FormatByteSize(r.env_bytes_read), bench::Fmt(r.Mteps(), 1)});
  }
  direct.Print();
  std::printf(
      "\nShape check: the NXS2 store is >= 1.8x smaller and env_bytes_read "
      "drops by the same factor on the shard traffic. Wall time follows "
      "the bytes whenever the device is the bottleneck (the throttled "
      "model, spinning disks, busy/slow SSDs); decode costs extra CPU, so "
      "on a fast device with few cores (where the off-thread decode split "
      "cannot hide it) NXS1 can still win wall-clock — the classic "
      "compression tradeoff, now measurable per run via env_bytes_read.\n");
  return 0;
}
