// Fig. 6: ratio of MPU total I/O to TurboGraph-like total I/O as the
// memory budget sweeps 0..2nBa, with the paper's Yahoo-web parameters.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/engine/io_model.h"

namespace nxgraph {
namespace {

IoModelParams YahooParams(double budget_gb) {
  IoModelParams p;
  p.n = 7.20e8;
  p.m = 6.63e9;
  p.Ba = 8;
  p.Bv = 4;
  p.Be = 4;
  p.d = 15;  // the paper's measured 10-20 band, midpoint
  p.BM = budget_gb * 1024.0 * 1024.0 * 1024.0;
  return p;
}

void BM_RatioCurve(benchmark::State& state) {
  for (auto _ : state) {
    for (double gb = 0.25; gb < 12.0; gb += 0.25) {
      benchmark::DoNotOptimize(MpuToTurboGraphRatio(YahooParams(gb)));
    }
  }
}
BENCHMARK(BM_RatioCurve);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Fig. 6: total-I/O ratio, MPU / TurboGraph-like "
      "(Yahoo-web, d=15, Ba=8, Bv=4, Be=4) ===\n\n");
  bench::Table table({"Memory budget (GB)", "Ratio", "Q/P"});
  for (double gb = 0.5; gb <= 11.5; gb += 0.5) {
    IoModelParams p = YahooParams(gb);
    table.AddRow({bench::Fmt(gb, 1),
                  bench::Fmt(MpuToTurboGraphRatio(p), 4),
                  bench::Fmt(std::min(1.0, p.BM / (2 * p.n * p.Ba)), 3)});
  }
  table.Print();
  std::printf(
      "\nShape check: ratio < 1 everywhere (\"MPU always outperforms "
      "TurboGraph-like\"), approaching 0 at small budgets.\n");
  return 0;
}
