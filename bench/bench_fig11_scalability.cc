// Fig. 11 (Exp 6): throughput (MTEPS) on the delaunay graph family as the
// vertex count doubles — the paper's scalability experiment. Metric is
// Million Traversed Edges Per Second over 10 PageRank iterations.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

struct Row {
  std::string dataset;
  std::string engine;
  double mteps;
};
std::vector<Row> g_rows;

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  const char* datasets[] = {"delaunay_n20", "delaunay_n21", "delaunay_n22",
                            "delaunay_n23", "delaunay_n24"};
  const bench::EngineKind engines[] = {
      bench::EngineKind::kNxCallback, bench::EngineKind::kNxLock,
      bench::EngineKind::kGraphChiLike, bench::EngineKind::kTurboGraphLike};

  for (const char* dataset : datasets) {
    auto store = bench::GetStore(dataset, 16, full);
    for (auto kind : engines) {
      std::string name =
          std::string(dataset) + "/" + bench::EngineName(kind);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            RunOptions opt;
            opt.num_threads = 4;
            RunStats stats;
            for (auto _ : st) {
              stats = bench::RunPageRankWith(kind, store, opt, 10);
            }
            st.counters["MTEPS"] = stats.Mteps();
            g_rows.push_back(
                Row{dataset, bench::EngineName(kind), stats.Mteps()});
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Fig. 11: scalability on the delaunay family "
              "(MTEPS, higher is better) ===\n\n");
  bench::Table table({"Engine", "n20", "n21", "n22", "n23", "n24"});
  for (auto kind : engines) {
    std::vector<std::string> row{bench::EngineName(kind),
                                 "-", "-", "-", "-", "-"};
    for (const auto& r : g_rows) {
      if (r.engine != bench::EngineName(kind)) continue;
      for (size_t d = 0; d < 5; ++d) {
        if (r.dataset == datasets[d]) row[d + 1] = bench::Fmt(r.mteps, 1);
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check (paper Fig. 11): NXgraph throughput grows (or holds) "
      "with graph size — larger graphs amortize scheduling overhead — and "
      "stays above both baselines; the TurboGraph-like series trends down "
      "as interval paging costs grow.\n");
  return 0;
}
