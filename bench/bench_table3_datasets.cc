// Table III: dataset inventory — the paper's graphs and the synthetic
// stand-ins this reproduction generates (DESIGN.md §3), with the actual
// vertex/edge counts realized at the current scale divisor.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace nxgraph {
namespace {

void BM_GenerateLiveJournalSim(benchmark::State& state) {
  for (auto _ : state) {
    auto edges = MakeDataset("live-journal-sim", 512);
    benchmark::DoNotOptimize(edges->num_edges());
  }
}
BENCHMARK(BM_GenerateLiveJournalSim)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  const bool full = bench::FullMode(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Table III: datasets (paper vs this reproduction, %s "
              "mode) ===\n\n",
              full ? "full" : "quick");
  bench::Table table({"Dataset", "Paper #V", "Paper #E", "Divisor", "Sim #V",
                      "Sim #E", "Generator"});
  for (const auto& info : ListDatasets()) {
    const uint64_t divisor = bench::Divisor(info.name, full);
    auto edges = MakeDataset(info.name, divisor);
    NX_CHECK(edges.ok()) << edges.status().ToString();
    table.AddRow({info.name, std::to_string(info.paper_vertices),
                  std::to_string(info.paper_edges), std::to_string(divisor),
                  std::to_string(edges->CountDistinctVertices()),
                  std::to_string(edges->num_edges()), info.generator});
  }
  table.Print();
  std::printf("\nVertex counts exclude isolated vertices, as in the paper.\n");
  return 0;
}
