// Table II: closed-form read/write volume per iteration for every update
// strategy, evaluated at the paper's dataset scales. Also micro-benchmarks
// the model evaluation itself via google-benchmark.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/engine/io_model.h"
#include "src/util/byte_size.h"

namespace nxgraph {
namespace {

struct DatasetParams {
  const char* name;
  double n;
  double m;
};

// Paper-scale graphs (Table III).
constexpr DatasetParams kDatasets[] = {
    {"Live-journal", 4.85e6, 6.90e7},
    {"Twitter", 4.17e7, 1.47e9},
    {"Yahoo-web", 7.20e8, 6.64e9},
};

IoModelParams Params(const DatasetParams& d, double budget_fraction) {
  IoModelParams p;
  p.n = d.n;
  p.m = d.m;
  p.Ba = 8;   // PageRank attribute (double)
  p.Bv = 4;   // vertex id
  p.Be = 4;   // compressed edge
  p.d = 15;   // paper's Yahoo-web estimate
  p.P = 16;
  p.BM = budget_fraction * 2 * d.n * p.Ba;
  return p;
}

void BM_ModelEvaluation(benchmark::State& state) {
  IoModelParams p = Params(kDatasets[2], 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpuIoCost(p));
    benchmark::DoNotOptimize(DpuIoCost(p));
    benchmark::DoNotOptimize(MpuIoCost(p));
    benchmark::DoNotOptimize(TurboGraphLikeIoCost(p));
  }
}
BENCHMARK(BM_ModelEvaluation);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  using bench::Fmt;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Table II: per-iteration I/O by update strategy "
      "(PageRank attributes, paper-scale graphs) ===\n");
  for (const auto& dataset : kDatasets) {
    std::printf("\n--- %s (n=%.3g, m=%.3g), budget = 50%% of 2nBa ---\n",
                dataset.name, dataset.n, dataset.m);
    IoModelParams p = Params(dataset, 0.5);
    bench::Table table({"Strategy", "Bread", "Bwrite", "Total"});
    const struct {
      const char* name;
      IoCost cost;
    } rows[] = {
        {"TurboGraph-like", TurboGraphLikeIoCost(p)},
        {"SPU", SpuIoCost(p)},
        {"DPU", DpuIoCost(p)},
        {"MPU", MpuIoCost(p)},
    };
    for (const auto& row : rows) {
      table.AddRow({row.name,
                    FormatByteSize(static_cast<uint64_t>(row.cost.read_bytes)),
                    FormatByteSize(static_cast<uint64_t>(row.cost.write_bytes)),
                    FormatByteSize(static_cast<uint64_t>(row.cost.total()))});
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper §III): SPU < MPU < DPU on total I/O, and MPU < "
      "TurboGraph-like at every budget.\n");

  // ---- measured Be from a real store (MakeIoModelParams) -------------------
  // The tables above assume the paper's Be = 4 bytes/edge. Building the
  // RMAT bench graph in both sub-shard formats and deriving Be from the
  // actual manifest blob sizes shows what the model predicts for THIS
  // code's stores — the m*Be term scales with the format's compression.
  std::printf(
      "\n=== Table II at MEASURED bytes/edge (RMAT live-journal-sim, "
      "quick scale, budget = 50%% of 2nBa) ===\n");
  bench::Table measured(
      {"Format", "Be (bytes/edge)", "d", "DPU Bread", "MPU total"});
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    // The same stores bench_format's smoke builds (shared path scheme).
    std::shared_ptr<GraphStore> store =
        bench::GetFormatStore("live-journal-sim", 16, 1024, f);
    IoModelParams p = MakeIoModelParams(
        store->manifest(), 8,
        static_cast<uint64_t>(store->num_vertices()) * 8);  // 50% of 2nBa
    measured.AddRow({SubShardFormatName(f), Fmt(p.Be), Fmt(p.d, 1),
                     FormatByteSize(static_cast<uint64_t>(DpuIoCost(p).read_bytes)),
                     FormatByteSize(static_cast<uint64_t>(MpuIoCost(p).total()))});
  }
  measured.Print();
  return 0;
}
