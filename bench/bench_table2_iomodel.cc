// Table II: closed-form read/write volume per iteration for every update
// strategy, evaluated at the paper's dataset scales. Also micro-benchmarks
// the model evaluation itself via google-benchmark.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/engine/io_model.h"
#include "src/util/byte_size.h"

namespace nxgraph {
namespace {

struct DatasetParams {
  const char* name;
  double n;
  double m;
};

// Paper-scale graphs (Table III).
constexpr DatasetParams kDatasets[] = {
    {"Live-journal", 4.85e6, 6.90e7},
    {"Twitter", 4.17e7, 1.47e9},
    {"Yahoo-web", 7.20e8, 6.64e9},
};

IoModelParams Params(const DatasetParams& d, double budget_fraction) {
  IoModelParams p;
  p.n = d.n;
  p.m = d.m;
  p.Ba = 8;   // PageRank attribute (double)
  p.Bv = 4;   // vertex id
  p.Be = 4;   // compressed edge
  p.d = 15;   // paper's Yahoo-web estimate
  p.P = 16;
  p.BM = budget_fraction * 2 * d.n * p.Ba;
  return p;
}

void BM_ModelEvaluation(benchmark::State& state) {
  IoModelParams p = Params(kDatasets[2], 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpuIoCost(p));
    benchmark::DoNotOptimize(DpuIoCost(p));
    benchmark::DoNotOptimize(MpuIoCost(p));
    benchmark::DoNotOptimize(TurboGraphLikeIoCost(p));
  }
}
BENCHMARK(BM_ModelEvaluation);

}  // namespace
}  // namespace nxgraph

int main(int argc, char** argv) {
  using namespace nxgraph;
  using bench::Fmt;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Table II: per-iteration I/O by update strategy "
      "(PageRank attributes, paper-scale graphs) ===\n");
  for (const auto& dataset : kDatasets) {
    std::printf("\n--- %s (n=%.3g, m=%.3g), budget = 50%% of 2nBa ---\n",
                dataset.name, dataset.n, dataset.m);
    IoModelParams p = Params(dataset, 0.5);
    bench::Table table({"Strategy", "Bread", "Bwrite", "Total"});
    const struct {
      const char* name;
      IoCost cost;
    } rows[] = {
        {"TurboGraph-like", TurboGraphLikeIoCost(p)},
        {"SPU", SpuIoCost(p)},
        {"DPU", DpuIoCost(p)},
        {"MPU", MpuIoCost(p)},
    };
    for (const auto& row : rows) {
      table.AddRow({row.name,
                    FormatByteSize(static_cast<uint64_t>(row.cost.read_bytes)),
                    FormatByteSize(static_cast<uint64_t>(row.cost.write_bytes)),
                    FormatByteSize(static_cast<uint64_t>(row.cost.total()))});
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper §III): SPU < MPU < DPU on total I/O, and MPU < "
      "TurboGraph-like at every budget.\n");
  return 0;
}
